// Validate-on-ingest: the streamed CSV load and the first validation
// pass share one materialization. pg.ReadCSVStream seals the loaded
// rows directly into the columnar Snapshot the fused engine scans, so
// the two-phase load-then-validate path's second full pass over the
// graph (buildSnapshot) never happens; schema compilation overlaps the
// load on a separate goroutine for the same reason.

package validate

import (
	"context"
	"io"

	"pgschema/internal/pg"
	"pgschema/internal/schema"
)

// ValidateStream loads a property graph from the nodes/edges CSV
// streams with the streaming columnar builder and validates it in the
// same materialization: the sealed columns are handed to the engine
// as a pre-built snapshot, and the program (opts.Program, or one
// compiled concurrently with the load) binds to them directly.
//
// The result is identical — byte-for-byte over rendered violations —
// to pg.ReadCSV followed by Validate with the same options. On a load
// error the graph and result are nil.
func ValidateStream(ctx context.Context, s *schema.Schema, nodes, edges io.Reader, opts Options) (*Result, *pg.Graph, error) {
	// Compile while the load streams; for a typical schema this hides
	// the whole compile behind the first few MB of CSV.
	progCh := make(chan *Program, 1)
	if opts.Program != nil && opts.Program.Schema() == s {
		progCh <- opts.Program
	} else {
		go func() { progCh <- Compile(s) }()
	}

	g, err := pg.ReadCSVStreamContext(ctx, nodes, edges)
	if err != nil {
		return nil, nil, err
	}
	opts.Program = <-progCh
	return ValidateContext(ctx, s, g, opts), g, nil
}
