package validate_test

// Large-graph coverage for the work-stealing chunk scheduler: the small
// differential seeds never produce more than a handful of chunks, so
// these tests pin engine equivalence and cap semantics on graphs big
// enough that every pass splits into dozens of range chunks claimed off
// the atomic cursor — including a skewed graph whose violations all
// live in one label's ID range, the load-balance case static sharding
// handled worst. They run under -race via the tier-1 suite.

import (
	"fmt"
	"testing"

	"pgschema/internal/gen"
	"pgschema/internal/pg"
	"pgschema/internal/validate"
	"pgschema/internal/values"
)

// TestDifferentialLargeGraphWorkStealing drives the full engine matrix
// over graphs large enough for multi-chunk scheduling (thousands of
// elements per pass), clean and with injected faults — among them DS4,
// whose chunked per-declaration pass is new.
func TestDifferentialLargeGraphWorkStealing(t *testing.T) {
	if testing.Short() {
		t.Skip("large-graph differential is not -short material")
	}
	s := buildDiff(t, diffSchema)
	const seed = 42
	base, err := gen.Conformant(s, gen.Config{Seed: seed, NodesPerType: 1500})
	if err != nil {
		t.Fatalf("conformant: %v", err)
	}
	if n := base.NodeBound() + base.EdgeBound(); n < 10_000 {
		t.Fatalf("graph too small to exercise chunking: %d elements", n)
	}
	assertEngineEquivalence(t, s, base, "large clean graph")

	for _, rule := range []validate.Rule{validate.DS1, validate.DS4, validate.SS2} {
		g := base.Clone()
		desc, err := gen.Inject(s, g, rule, seed)
		if err != nil {
			t.Fatalf("inject %s: %v", rule, err)
		}
		assertEngineEquivalence(t, s, g, fmt.Sprintf("large graph, inject %s (%s)", rule, desc))
	}
}

// TestDifferentialSkewedViolations builds the scheduler's worst static
// split: a graph that is almost entirely Book nodes, every one of them
// violating DS6 (no author edge) and DS4 (no incoming published edge),
// so both the violations and the DS4 target enumeration concentrate in
// one contiguous ID range. All engines must still agree byte for byte.
func TestDifferentialSkewedViolations(t *testing.T) {
	s := buildDiff(t, diffSchema)
	g := pg.New()
	const books = 3000
	for i := 0; i < books; i++ {
		b := g.AddNode("Book")
		g.SetNodeProp(b, "title", values.String(fmt.Sprintf("book %d", i)))
	}
	assertEngineEquivalence(t, s, g, "skewed all-violating graph")

	res := validate.Validate(s, g, validate.Options{
		Mode: validate.Directives, Workers: 4, ElementSharding: true,
	})
	by := res.ByRule()
	if len(by[validate.DS6]) != books || len(by[validate.DS4]) != books {
		t.Fatalf("want %d DS6 and %d DS4 violations, got %d and %d",
			books, books, len(by[validate.DS6]), len(by[validate.DS4]))
	}
}

// TestScaleSmokeParallel is the 10⁵-element smoke wired into make
// check: generation, autotuned parallel validation under the race
// detector, and byte-identity between the sequential fused engine and
// the work-stealing parallel one at a size where every pass spans
// hundreds of chunks.
func TestScaleSmokeParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("scale smoke is not -short material")
	}
	s := buildDiff(t, diffSchema)
	base, err := gen.Conformant(s, gen.Config{Seed: 7, NodesPerType: 15_000, ExtraEdges: 2.0})
	if err != nil {
		t.Fatalf("conformant: %v", err)
	}
	elements := base.NodeBound() + base.EdgeBound()
	if elements < 100_000 {
		t.Fatalf("smoke graph too small: %d elements, want ≥ 100000", elements)
	}

	seq := validate.Validate(s, base, validate.Options{Engine: validate.EngineFused, Workers: -1})
	par := validate.Validate(s, base, validate.Options{
		Engine: validate.EngineFused, Workers: 4, ElementSharding: true,
	})
	if a, b := renderViolations(seq), renderViolations(par); a != b {
		t.Errorf("sequential and work-stealing parallel results diverge:\n--- seq ---\n%s--- par ---\n%s", a, b)
	}
	if !seq.OK() {
		t.Errorf("conformant smoke graph reported violations: %v", seq.Violations[:min(3, len(seq.Violations))])
	}

	// EngineAuto with Workers 0 must autotune on a graph this size and
	// still produce the identical (empty) violation set.
	auto := validate.Validate(s, base, validate.Options{})
	if !auto.OK() {
		t.Errorf("autotuned run diverges: %v", auto.Violations[:min(3, len(auto.Violations))])
	}
}
