package validate

import (
	"fmt"

	"pgschema/internal/pg"
	"pgschema/internal/schema"
)

// ws1 — WS1 (node properties must be of the required type): for all
// (v, f) ∈ dom(σ) with v ∈ V, f ∈ fieldsS(λ(v)), and
// t = typeF(λ(v), f) ∈ S ∪ WS, it must hold that σ(v, f) ∈ valuesW(t).
func (r *runner) ws1(emit emitFunc, shard, nShards int) {
	for _, v := range r.nodes() {
		if !nodeShard(v, shard, nShards) {
			continue
		}
		label := r.g.NodeLabel(v)
		td := r.s.Type(label)
		if td == nil {
			continue // SS1's concern
		}
		for _, name := range r.g.NodePropNames(v) {
			f := td.Field(name)
			if f == nil || !r.s.IsAttribute(f) {
				continue // SS2's concern
			}
			val, _ := r.g.NodeProp(v, name)
			if !r.s.MemberOfW(val, f.Type) && !r.drop() {
				emit(Violation{
					Rule: WS1, Node: v, Edge: -1,
					TypeName: label, Field: name, Property: name,
					Message: fmt.Sprintf("%s (%s): property %q = %s is not in valuesW(%s)",
						nodeRef(v), label, name, val, f.Type),
				})
			}
		}
	}
}

// ws2 — WS2 (edge properties must be of the required type): for all
// (e, a) ∈ dom(σ) with e ∈ E, ρ(e) = (v1, v2), f = (λ(v1), λ(e)), and
// a ∈ argsS(f), it must hold that σ(e, a) ∈ valuesW(typeAF(f, a)).
func (r *runner) ws2(emit emitFunc, shard, nShards int) {
	for _, e := range r.edges() {
		if !edgeShard(e, shard, nShards) {
			continue
		}
		src, _ := r.g.Endpoints(e)
		fd := r.s.Field(r.g.NodeLabel(src), r.g.EdgeLabel(e))
		if fd == nil {
			continue // SS4's concern
		}
		for _, name := range r.g.EdgePropNames(e) {
			arg := fd.Arg(name)
			if arg == nil {
				continue // SS3's concern
			}
			val, _ := r.g.EdgeProp(e, name)
			if !r.s.MemberOfW(val, arg.Type) && !r.drop() {
				emit(Violation{
					Rule: WS2, Node: src, Edge: e,
					TypeName: fd.Owner, Field: fd.Name, Property: name,
					Message: fmt.Sprintf("%s (%s): property %q = %s is not in valuesW(%s)",
						edgeRef(e), fd.Name, name, val, arg.Type),
				})
			}
		}
	}
}

// ws3 — WS3 (target nodes must be of the required type): for every e ∈ E
// with ρ(e) = (v1, v2) and f = (λ(v1), λ(e)) ∈ dom(typeF), it must hold
// that λ(v2) ⊑S basetype(typeF(f)).
func (r *runner) ws3(emit emitFunc, shard, nShards int) {
	for _, e := range r.edges() {
		if !edgeShard(e, shard, nShards) {
			continue
		}
		src, dst := r.g.Endpoints(e)
		srcLabel := r.g.NodeLabel(src)
		fd := r.s.Field(srcLabel, r.g.EdgeLabel(e))
		if fd == nil {
			continue
		}
		base := fd.Type.Base()
		if !r.s.SubtypeNamed(r.g.NodeLabel(dst), base) && !r.drop() {
			emit(Violation{
				Rule: WS3, Node: dst, Edge: e,
				TypeName: srcLabel, Field: fd.Name,
				Message: fmt.Sprintf("%s (%s): target %s has label %q, which is not a subtype of basetype(%s) = %s",
					edgeRef(e), fd.Name, nodeRef(dst), r.g.NodeLabel(dst), fd.Type, base),
			})
		}
	}
}

// ws4 — WS4 (non-list fields contain at most one edge): for all edges
// e1 ≠ e2 with the same source and label f where typeF(λ(v1), f) is not a
// list type (nor a non-null-wrapped list type), the graph is invalid.
func (r *runner) ws4(emit emitFunc, shard, nShards int) {
	if r.opts.NaivePairScan {
		r.ws4Naive(emit, shard, nShards)
		return
	}
	for _, v := range r.nodes() {
		if !nodeShard(v, shard, nShards) {
			continue
		}
		label := r.g.NodeLabel(v)
		td := r.s.Type(label)
		if td == nil {
			continue
		}
		counts := make(map[string]int)
		for _, e := range r.g.OutEdges(v) {
			counts[r.g.EdgeLabel(e)]++
		}
		for f, n := range counts {
			if n < 2 {
				continue
			}
			fd := td.Field(f)
			if fd == nil || fd.Type.IsList() || r.drop() {
				continue
			}
			emit(Violation{
				Rule: WS4, Node: v, Edge: -1,
				TypeName: label, Field: f,
				Message: fmt.Sprintf("%s (%s): %d outgoing %q edges, but %s.%s has non-list type %s (at most one edge allowed)",
					nodeRef(v), label, n, f, label, f, fd.Type),
			})
		}
	}
}

// ws4Naive is the textbook pair scan over E × E from Definition 5.1, kept
// for the index ablation benchmark. Sharding goes by the source node —
// the key the dedup map uses — so that all pairs with a common source
// land in one shard; sharding by edge id would let two shards holding
// different e1 edges with the same (source, field) each emit the
// violation once.
func (r *runner) ws4Naive(emit emitFunc, shard, nShards int) {
	edges := r.edges()
	reported := make(map[pg.NodeID]map[string]bool)
	for i, e1 := range edges {
		s1, _ := r.g.Endpoints(e1)
		if !nodeShard(s1, shard, nShards) {
			continue
		}
		f := r.g.EdgeLabel(e1)
		if reported[s1][f] {
			continue
		}
		// e1 is the first f-labeled edge out of s1; the scan over the
		// remaining pairs yields the total count, so the emitted message
		// is byte-identical to the indexed implementation's.
		n := 1
		for _, e2 := range edges[i+1:] {
			s2, _ := r.g.Endpoints(e2)
			if s1 == s2 && f == r.g.EdgeLabel(e2) {
				n++
			}
		}
		if n < 2 {
			continue
		}
		fd := r.s.Field(r.g.NodeLabel(s1), f)
		if fd == nil || fd.Type.IsList() {
			continue
		}
		if reported[s1] == nil {
			reported[s1] = make(map[string]bool)
		}
		reported[s1][f] = true
		if r.drop() {
			continue
		}
		emit(Violation{
			Rule: WS4, Node: s1, Edge: -1,
			TypeName: r.g.NodeLabel(s1), Field: f,
			Message: fmt.Sprintf("%s (%s): %d outgoing %q edges, but %s.%s has non-list type %s (at most one edge allowed)",
				nodeRef(s1), r.g.NodeLabel(s1), n, f, r.g.NodeLabel(s1), f, fd.Type),
		})
	}
}

// relationshipDeclarations yields every (t, f) ∈ dom(typeF) whose field is
// a relationship definition, across object and interface types — the
// declarations DS1–DS4 and DS6 quantify over.
func (r *runner) relationshipDeclarations() []*schema.FieldDef {
	var out []*schema.FieldDef
	for _, td := range r.s.Types() {
		if td.Kind != schema.Object && td.Kind != schema.Interface {
			continue
		}
		for _, f := range td.Fields {
			if r.s.IsRelationship(f) {
				out = append(out, f)
			}
		}
	}
	return out
}

// attributeDeclarations yields every (t, f) whose field is an attribute
// definition (DS5 quantifies over these).
func (r *runner) attributeDeclarations() []*schema.FieldDef {
	var out []*schema.FieldDef
	for _, td := range r.s.Types() {
		if td.Kind != schema.Object && td.Kind != schema.Interface {
			continue
		}
		for _, f := range td.Fields {
			if r.s.IsAttribute(f) {
				out = append(out, f)
			}
		}
	}
	return out
}

// nodesOfType yields the nodes v with λ(v) ⊑S t for a named type t,
// using the label index (object type: one label; interface/union: the
// implementing/member labels).
func (r *runner) nodesOfType(named string) []pg.NodeID {
	if r.bind != nil && r.onlyNodes == nil && r.onlyTypes == nil {
		// The bound program's enumeration covers the unrestricted case;
		// callers must not mutate the shared slice. Restricted sweeps
		// (incremental revalidation) skip it so they never force the
		// lazy O(V) enumeration build for a delta-sized region.
		r.bind.ensureNodes()
		return r.bind.nodesOf[named]
	}
	var out []pg.NodeID
	for _, label := range r.s.ConcreteTargets(named) {
		for _, id := range r.g.NodesLabeled(label) {
			if r.onlyNodes == nil || r.onlyNodes[id] {
				out = append(out, id)
			}
		}
	}
	return out
}
