package validate

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pgschema/internal/pg"
	"pgschema/internal/schema"
	"pgschema/internal/values"
)

// The fused engine evaluates every applicable per-element rule in a
// single pass over the nodes and a single pass over the edges, instead
// of one full sweep per rule. Theorem 1's observation that all fifteen
// satisfaction rules are constant-depth conditions evaluable
// independently per graph element makes the fusion sound: the rules
// never exchange information, so interleaving them per element yields
// the same violation set as running them rule by rule. The differential
// test harness (differential_test.go) proves the equivalence across
// engines, worker counts, sharding, modes, and compiled programs.
//
// The passes run against a compiled Program bound to the graph
// (program.go) and scan the graph's columnar snapshot (pg.Snapshot):
// flat label arrays, CSR adjacency of live edges, flattened property
// rows, and per-sym presence bitsets, so the hot loops touch contiguous
// memory instead of chasing node/edge structs. Two rules quantify
// globally: DS4 iterates each @requiredForTarget declaration's
// precomputed target enumeration (chunkable like the passes), and DS7
// buckets nodes per type and stays a single task.
//
// Parallel runs split every pass into many contiguous element chunks
// claimed off an atomic cursor — work stealing without deques. A skewed
// graph (all violations, or all adjacency, concentrated in one region)
// no longer pins one worker while the rest idle behind a static modulo
// split: whoever finishes a chunk first claims the next one. Chunks are
// ranges, not modulo classes, so every element is wholly processed by
// one chunk and the per-element dedup keys (WS4/DS1 by source node,
// DS3/DS4 by target node) keep the violation set byte-identical.

// nodePassRules are the rules the fused node pass evaluates, in paper
// order.
var nodePassRules = []Rule{WS1, WS4, DS1, DS2, DS3, DS5, DS6, SS1, SS2}

// edgePassRules are the rules the fused edge pass evaluates.
var edgePassRules = []Rule{WS2, WS3, SS3, SS4}

// fusedWant is the set of requested rules as branch-predictable flags
// for the fused inner loops.
type fusedWant struct {
	ws1, ws2, ws3, ws4                bool
	ds1, ds2, ds3, ds4, ds5, ds6, ds7 bool
	ss1, ss2, ss3, ss4                bool
}

func wantRules(rules []Rule) fusedWant {
	var w fusedWant
	for _, r := range rules {
		switch r {
		case WS1:
			w.ws1 = true
		case WS2:
			w.ws2 = true
		case WS3:
			w.ws3 = true
		case WS4:
			w.ws4 = true
		case DS1:
			w.ds1 = true
		case DS2:
			w.ds2 = true
		case DS3:
			w.ds3 = true
		case DS4:
			w.ds4 = true
		case DS5:
			w.ds5 = true
		case DS6:
			w.ds6 = true
		case DS7:
			w.ds7 = true
		case SS1:
			w.ss1 = true
		case SS2:
			w.ss2 = true
		case SS3:
			w.ss3 = true
		case SS4:
			w.ss4 = true
		}
	}
	return w
}

// active intersects a pass's rule list with the requested set.
func (w fusedWant) active(pass []Rule) []Rule {
	var out []Rule
	for _, r := range pass {
		switch r {
		case WS1:
			if !w.ws1 {
				continue
			}
		case WS2:
			if !w.ws2 {
				continue
			}
		case WS3:
			if !w.ws3 {
				continue
			}
		case WS4:
			if !w.ws4 {
				continue
			}
		case DS1:
			if !w.ds1 {
				continue
			}
		case DS2:
			if !w.ds2 {
				continue
			}
		case DS3:
			if !w.ds3 {
				continue
			}
		case DS5:
			if !w.ds5 {
				continue
			}
		case DS6:
			if !w.ds6 {
				continue
			}
		case SS1:
			if !w.ss1 {
				continue
			}
		case SS2:
			if !w.ss2 {
				continue
			}
		case SS3:
			if !w.ss3 {
				continue
			}
		case SS4:
			if !w.ss4 {
				continue
			}
		}
		out = append(out, r)
	}
	return out
}

// fusedScratch is per-worker reusable state for the node pass, so the
// violation-free path allocates nothing per node: a dense edge-label
// counter (indexed by Sym, kept all-zero between nodes via the touched
// list) for WS4 and a target-count map (cleared, not reallocated) for
// DS1.
type fusedScratch struct {
	counts  []int32
	touched []pg.Sym
	seen    map[pg.NodeID]int32
}

func newFusedScratch(symCount int) *fusedScratch {
	return &fusedScratch{
		counts: make([]int32, symCount),
		seen:   make(map[pg.NodeID]int32),
	}
}

// fusedNodePass evaluates WS1, WS4, DS1, DS2, DS3, DS5, DS6, SS1, and
// SS2 for every live node in [lo, hi), emitting exactly the violations
// the rule-by-rule sweeps would. All reads go through the binding's
// columnar snapshot. A nil list means the dense ID range [lo, hi);
// otherwise the pass visits list[lo:hi] — the shape incremental
// revalidation chunks its dirty-node set into.
func (r *runner) fusedNodePass(w fusedWant, emit emitFunc, list []pg.NodeID, lo, hi int, sc *fusedScratch) {
	b := r.bind
	snap := b.snap
	for vi := lo; vi < hi; vi++ {
		v := pg.NodeID(vi)
		if list != nil {
			v = list[vi]
		}
		vls := snap.NodeLabelSym(v)
		if vls == pg.NoSym {
			continue // removed node
		}
		bl := b.labels[vls]
		td := bl.td
		label := bl.label

		// SS1: the label must be a declared object type.
		if w.ss1 && (td == nil || td.Kind != schema.Object) && !r.drop() {
			emit(Violation{
				Rule: SS1, Node: v, Edge: -1, TypeName: label,
				Message: fmt.Sprintf("%s: label %q is not an object type of the schema", nodeRef(v), label),
			})
		}

		// WS1 + SS2 share the flat property row.
		if w.ws1 || w.ss2 {
			props := snap.NodePropsOf(v)
			for i := range props {
				pr := &props[i]
				var slot fieldSlot
				if bl.fields != nil {
					slot = bl.fields[pr.Sym]
				}
				if slot.fd == nil {
					if w.ss2 && !r.drop() {
						emit(Violation{
							Rule: SS2, Node: v, Edge: -1, TypeName: label, Property: pr.Name,
							Message: fmt.Sprintf("%s (%s): property %q is not declared as a field of %s", nodeRef(v), label, pr.Name, label),
						})
					}
					continue
				}
				if !slot.isAttr {
					if w.ss2 && !r.drop() {
						emit(Violation{
							Rule: SS2, Node: v, Edge: -1, TypeName: label, Field: pr.Name, Property: pr.Name,
							Message: fmt.Sprintf("%s (%s): property %q corresponds to relationship field %s.%s of type %s, not an attribute",
								nodeRef(v), label, pr.Name, label, pr.Name, slot.fd.Type),
						})
					}
					continue
				}
				if w.ws1 && !r.s.MemberOfW(pr.Value, slot.fd.Type) && !r.drop() {
					emit(Violation{
						Rule: WS1, Node: v, Edge: -1,
						TypeName: label, Field: pr.Name, Property: pr.Name,
						Message: fmt.Sprintf("%s (%s): property %q = %s is not in valuesW(%s)",
							nodeRef(v), label, pr.Name, pr.Value, slot.fd.Type),
					})
				}
			}
		}

		// WS4: at most one edge per non-list field. Count out-edges per
		// label Sym in the dense scratch counter; the snapshot's CSR
		// adjacency holds live edges only.
		if w.ws4 && td != nil {
			sc.touched = sc.touched[:0]
			for _, e := range snap.OutEdgesOf(v) {
				ls := snap.EdgeLabelSym(e)
				if sc.counts[ls] == 0 {
					sc.touched = append(sc.touched, ls)
				}
				sc.counts[ls]++
			}
			for _, ls := range sc.touched {
				n := sc.counts[ls]
				sc.counts[ls] = 0
				if n < 2 {
					continue
				}
				slot := bl.fields[ls]
				if slot.fd == nil || slot.fd.Type.IsList() || r.drop() {
					continue
				}
				f := r.g.SymName(ls)
				emit(Violation{
					Rule: WS4, Node: v, Edge: -1,
					TypeName: label, Field: f,
					Message: fmt.Sprintf("%s (%s): %d outgoing %q edges, but %s.%s has non-list type %s (at most one edge allowed)",
						nodeRef(v), label, n, f, label, f, slot.fd.Type),
				})
			}
		}

		// Source-side directive rules: DS1, DS2, DS6.
		for i := range bl.srcRel {
			d := &bl.srcRel[i]
			if w.ds1 && d.distinct {
				for _, e := range snap.OutEdgesOf(v) {
					if snap.EdgeLabelSym(e) != d.sym {
						continue
					}
					_, dst := snap.Endpoints(e)
					sc.seen[dst]++
					if sc.seen[dst] == 2 && !r.drop() {
						emit(Violation{
							Rule: DS1, Node: v, Edge: e,
							TypeName: d.fd.Owner, Field: d.fd.Name,
							Message: fmt.Sprintf("%s: multiple %q edges to %s violate @distinct on %s.%s",
								nodeRef(v), d.fd.Name, nodeRef(dst), d.fd.Owner, d.fd.Name),
						})
					}
				}
				if len(sc.seen) > 0 {
					clear(sc.seen)
				}
			}
			if w.ds2 && d.noLoops {
				for _, e := range snap.OutEdgesOf(v) {
					if snap.EdgeLabelSym(e) != d.sym {
						continue
					}
					if _, dst := snap.Endpoints(e); dst == v && !r.drop() {
						emit(Violation{
							Rule: DS2, Node: v, Edge: e,
							TypeName: d.fd.Owner, Field: d.fd.Name,
							Message: fmt.Sprintf("%s: %q loop edge violates @noLoops on %s.%s",
								nodeRef(v), d.fd.Name, d.fd.Owner, d.fd.Name),
						})
					}
				}
			}
			if w.ds6 && d.required {
				found := false
				for _, e := range snap.OutEdgesOf(v) {
					if snap.EdgeLabelSym(e) == d.sym {
						found = true
						break
					}
				}
				if !found && !r.drop() {
					emit(Violation{
						Rule: DS6, Node: v, Edge: -1,
						TypeName: d.fd.Owner, Field: d.fd.Name,
						Message: fmt.Sprintf("%s (%s): no outgoing %q edge, violating @required on %s.%s",
							nodeRef(v), label, d.fd.Name, d.fd.Owner, d.fd.Name),
					})
				}
			}
		}

		// DS5: @required attribute properties. Presence is one word load
		// in the per-sym bitset; the value is fetched only for list-typed
		// fields, which must additionally be nonempty.
		if w.ds5 {
			for i := range bl.reqAttrs {
				req := &bl.reqAttrs[i]
				if !snap.NodeHasProp(v, req.sym) {
					if !r.drop() {
						emit(Violation{
							Rule: DS5, Node: v, Edge: -1,
							TypeName: req.fd.Owner, Field: req.fd.Name, Property: req.fd.Name,
							Message: fmt.Sprintf("%s (%s): missing property %q required by @required on %s.%s",
								nodeRef(v), label, req.fd.Name, req.fd.Owner, req.fd.Name),
						})
					}
					continue
				}
				if req.fd.Type.IsList() {
					if val, ok := snap.NodePropBySym(v, req.sym); ok && val.Kind() == values.KindList && val.Len() == 0 && !r.drop() {
						emit(Violation{
							Rule: DS5, Node: v, Edge: -1,
							TypeName: req.fd.Owner, Field: req.fd.Name, Property: req.fd.Name,
							Message: fmt.Sprintf("%s (%s): property %q is an empty list, but @required on %s.%s demands a nonempty list",
								nodeRef(v), label, req.fd.Name, req.fd.Owner, req.fd.Name),
						})
					}
				}
			}
		}

		// DS3 (target side): at most one incoming @uniqueForTarget edge.
		if w.ds3 {
			for i := range bl.uftIn {
				u := &bl.uftIn[i]
				n := 0
				var second pg.EdgeID = -1
				for _, e := range snap.InEdgesOf(v) {
					if snap.EdgeLabelSym(e) != u.sym {
						continue
					}
					src, _ := snap.Endpoints(e)
					if !b.labels[snap.NodeLabelSym(src)].sub[u.ownerID] {
						continue
					}
					n++
					if n == 2 {
						second = e
					}
				}
				if n > 1 && !r.drop() {
					emit(Violation{
						Rule: DS3, Node: v, Edge: second,
						TypeName: u.fd.Owner, Field: u.fd.Name,
						Message: fmt.Sprintf("%s: %d incoming %q edges from %s nodes violate @uniqueForTarget on %s.%s",
							nodeRef(v), n, u.fd.Name, u.fd.Owner, u.fd.Owner, u.fd.Name),
					})
				}
			}
		}
	}
}

// fusedEdgePass evaluates WS2, WS3, SS3, and SS4 for every live edge in
// [lo, hi), reading the snapshot's flat edge columns. As in
// fusedNodePass, a non-nil list switches the pass from the dense ID
// range to list[lo:hi].
func (r *runner) fusedEdgePass(w fusedWant, emit emitFunc, list []pg.EdgeID, lo, hi int) {
	b := r.bind
	snap := b.snap
	for ei := lo; ei < hi; ei++ {
		e := pg.EdgeID(ei)
		if list != nil {
			e = list[ei]
		}
		els := snap.EdgeLabelSym(e)
		if els == pg.NoSym {
			continue // removed edge
		}
		src, dst := snap.Endpoints(e)
		srcInfo := b.labels[snap.NodeLabelSym(src)]
		srcLabel := srcInfo.label
		elabel := r.g.SymName(els)
		var slot fieldSlot
		if srcInfo.fields != nil {
			slot = srcInfo.fields[els]
		}
		fd := slot.fd

		// SS4: the edge label must be a declared relationship field.
		if w.ss4 {
			switch {
			case fd == nil:
				if !r.drop() {
					emit(Violation{
						Rule: SS4, Node: src, Edge: e, TypeName: srcLabel, Field: elabel,
						Message: fmt.Sprintf("%s: label %q is not a declared field of %s", edgeRef(e), elabel, srcLabel),
					})
				}
			case slot.isAttr:
				if !r.drop() {
					emit(Violation{
						Rule: SS4, Node: src, Edge: e, TypeName: srcLabel, Field: elabel,
						Message: fmt.Sprintf("%s: label %q corresponds to attribute field %s.%s of type %s, not a relationship",
							edgeRef(e), elabel, srcLabel, elabel, fd.Type),
					})
				}
			}
		}

		// WS2 + SS3 share the flat edge-property row.
		if w.ws2 || w.ss3 {
			props := snap.EdgePropsOf(e)
			for i := range props {
				pr := &props[i]
				var arg *schema.ArgDef
				if fd != nil {
					arg = fd.Arg(pr.Name)
				}
				if arg == nil {
					if w.ss3 && !r.drop() {
						emit(Violation{
							Rule: SS3, Node: src, Edge: e, TypeName: srcLabel, Field: elabel, Property: pr.Name,
							Message: fmt.Sprintf("%s (%s): property %q is not a declared argument of %s.%s",
								edgeRef(e), elabel, pr.Name, srcLabel, elabel),
						})
					}
					continue
				}
				if w.ws2 && !r.s.MemberOfW(pr.Value, arg.Type) && !r.drop() {
					emit(Violation{
						Rule: WS2, Node: src, Edge: e,
						TypeName: fd.Owner, Field: fd.Name, Property: pr.Name,
						Message: fmt.Sprintf("%s (%s): property %q = %s is not in valuesW(%s)",
							edgeRef(e), fd.Name, pr.Name, pr.Value, arg.Type),
					})
				}
			}
		}

		// WS3: the target's label must subtype the field's base type.
		if w.ws3 && fd != nil {
			dls := snap.NodeLabelSym(dst)
			if !b.labels[dls].sub[slot.baseID] && !r.drop() {
				base := fd.Type.Base()
				emit(Violation{
					Rule: WS3, Node: dst, Edge: e,
					TypeName: srcLabel, Field: fd.Name,
					Message: fmt.Sprintf("%s (%s): target %s has label %q, which is not a subtype of basetype(%s) = %s",
						edgeRef(e), fd.Name, nodeRef(dst), r.g.SymName(dls), fd.Type, base),
				})
			}
		}
	}
}

// ds4Fused evaluates DS4 for the declaration's target nodes in [lo, hi)
// of its bound enumeration; decl < 0 means every declaration over its
// full range (the unchunked task shape). Emitted violations match
// runner.ds4 byte for byte: the declarations are compiled in
// relationshipDeclarations order and the targets come from the same
// bound enumeration ds4 iterates.
func (r *runner) ds4Fused(emit emitFunc, decl, lo, hi int) {
	b := r.bind
	if decl < 0 {
		for d := range b.reqTargets {
			r.ds4Decl(emit, &b.reqTargets[d], 0, len(b.reqTargets[d].targets))
		}
		return
	}
	r.ds4Decl(emit, &b.reqTargets[decl], lo, hi)
}

func (r *runner) ds4Decl(emit emitFunc, rt *boundReqTarget, lo, hi int) {
	for _, v2 := range rt.targets[lo:hi] {
		r.ds4Check(emit, rt, v2)
	}
}

// ds4Check tests one candidate target node against one declaration —
// the shared kernel of the full enumeration sweep and the dirty pass.
func (r *runner) ds4Check(emit emitFunc, rt *boundReqTarget, v2 pg.NodeID) {
	b := r.bind
	snap := b.snap
	found := false
	for _, e := range snap.InEdgesOf(v2) {
		if snap.EdgeLabelSym(e) != rt.sym {
			continue
		}
		src, _ := snap.Endpoints(e)
		if b.labels[snap.NodeLabelSym(src)].sub[rt.ownerID] {
			found = true
			break
		}
	}
	if !found && !r.drop() {
		emit(Violation{
			Rule: DS4, Node: v2, Edge: -1,
			TypeName: rt.fd.Owner, Field: rt.fd.Name,
			Message: fmt.Sprintf("%s (%s): no incoming %q edge from a %s node, violating @requiredForTarget on %s.%s",
				nodeRef(v2), r.g.SymName(snap.NodeLabelSym(v2)), rt.fd.Name, rt.fd.Owner, rt.fd.Owner, rt.fd.Name),
		})
	}
}

// ds4DirtyPass evaluates every DS4 declaration against the candidate
// nodes in list[lo:hi]: a node is a target of a declaration iff its
// current label is in the declaration's concrete-target sym set, the
// exact membership the full enumeration encodes — so checking dirty
// candidates against targetSyms yields the same violations a full
// sweep would, without materializing any enumeration.
func (r *runner) ds4DirtyPass(emit emitFunc, list []pg.NodeID, lo, hi int) {
	b := r.bind
	snap := b.snap
	for d := range b.reqTargets {
		rt := &b.reqTargets[d]
		for _, v := range list[lo:hi] {
			vls := snap.NodeLabelSym(v)
			if vls == pg.NoSym || !rt.targetSyms[vls] {
				continue
			}
			r.ds4Check(emit, rt, v)
		}
	}
}

// fusedChunk is one stealable unit of fused work: a contiguous element
// range of a node pass, edge pass, or one DS4 declaration's target
// enumeration — or the whole DS7 pass, which buckets globally. A
// non-nil nodes/edges list redirects the range into that list, and each
// chunk carries its own rule set — incremental revalidation chunks its
// dirty sets this way, with different rules active per region.
type fusedChunk struct {
	kind   fusedTaskKind
	decl   int // DS4: index into binding.reqTargets; -1 = all
	lo, hi int
	w      fusedWant
	nodes  []pg.NodeID
	edges  []pg.EdgeID
}

type fusedTaskKind int

const (
	taskNodePass fusedTaskKind = iota
	taskEdgePass
	taskDS4
	taskDS4Dirty
	taskDS7
)

// run executes the chunk, emitting into emit.
func (t fusedChunk) run(r *runner, sc *fusedScratch, emit emitFunc) {
	switch t.kind {
	case taskNodePass:
		r.fusedNodePass(t.w, emit, t.nodes, t.lo, t.hi, sc)
	case taskEdgePass:
		r.fusedEdgePass(t.w, emit, t.edges, t.lo, t.hi)
	case taskDS4:
		r.ds4Fused(emit, t.decl, t.lo, t.hi)
	case taskDS4Dirty:
		r.ds4DirtyPass(emit, t.nodes, t.lo, t.hi)
	default:
		r.ds7(emit, 0, 1)
	}
}

// rules returns the rules the chunk evaluates (already intersected with
// the requested set), for timing attribution.
func (t fusedChunk) rules() []Rule {
	switch t.kind {
	case taskNodePass:
		return t.w.active(nodePassRules)
	case taskEdgePass:
		return t.w.active(edgePassRules)
	case taskDS4, taskDS4Dirty:
		return []Rule{DS4}
	default:
		return []Rule{DS7}
	}
}

// Chunk sizing: aim for chunksPerWorker chunks per worker so the cursor
// can rebalance skew, but never smaller than minChunkSpan elements so
// tiny graphs don't drown in scheduling overhead (and tests on small
// graphs still exercise multi-chunk merges).
const (
	minChunkSpan    = 16
	chunksPerWorker = 16
)

// appendRangeChunks splits [0, bound) into spans for the given worker
// count and appends them as chunks of the kind.
func appendRangeChunks(chunks []fusedChunk, kind fusedTaskKind, decl, bound, workers int) []fusedChunk {
	if bound <= 0 {
		return chunks
	}
	span := (bound + workers*chunksPerWorker - 1) / (workers * chunksPerWorker)
	if span < minChunkSpan {
		span = minChunkSpan
	}
	for lo := 0; lo < bound; lo += span {
		hi := lo + span
		if hi > bound {
			hi = bound
		}
		chunks = append(chunks, fusedChunk{kind: kind, decl: decl, lo: lo, hi: hi})
	}
	return chunks
}

// planFusedChunks plans the work units for the requested rules. Without
// ElementSharding each pass is one whole chunk (coarse tasks, as the
// non-sharded parallel engine always ran); with it the node and edge
// passes and every DS4 declaration split into many range chunks for the
// stealing cursor. DS7 buckets globally and stays whole either way.
func (r *runner) planFusedChunks(w fusedWant, sharded bool, workers int) []fusedChunk {
	b := r.bind
	var chunks []fusedChunk
	nodePass := len(w.active(nodePassRules)) > 0
	edgePass := len(w.active(edgePassRules)) > 0
	if !sharded {
		if nodePass {
			chunks = append(chunks, fusedChunk{kind: taskNodePass, decl: -1, lo: 0, hi: b.snap.NodeBound()})
		}
		if edgePass {
			chunks = append(chunks, fusedChunk{kind: taskEdgePass, decl: -1, lo: 0, hi: b.snap.EdgeBound()})
		}
		if w.ds4 {
			chunks = append(chunks, fusedChunk{kind: taskDS4, decl: -1})
		}
		if w.ds7 {
			chunks = append(chunks, fusedChunk{kind: taskDS7, decl: -1})
		}
		for i := range chunks {
			chunks[i].w = w
		}
		return chunks
	}
	if nodePass {
		chunks = appendRangeChunks(chunks, taskNodePass, -1, b.snap.NodeBound(), workers)
	}
	if edgePass {
		chunks = appendRangeChunks(chunks, taskEdgePass, -1, b.snap.EdgeBound(), workers)
	}
	if w.ds4 {
		for d := range b.reqTargets {
			chunks = appendRangeChunks(chunks, taskDS4, d, len(b.reqTargets[d].targets), workers)
		}
	}
	if w.ds7 {
		chunks = append(chunks, fusedChunk{kind: taskDS7, decl: -1})
	}
	for i := range chunks {
		chunks[i].w = w
	}
	return chunks
}

// attribute splits a pass's elapsed time across the rules it evaluated:
// each rule gets an equal share and the first rule absorbs the division
// remainder, so the per-rule durations sum exactly to the measured pass
// time. This is an attribution, not a per-rule measurement — the fused
// inner loop deliberately avoids per-rule clock reads.
func attribute(timings map[Rule]time.Duration, rules []Rule, elapsed time.Duration) {
	if len(rules) == 0 {
		return
	}
	share := elapsed / time.Duration(len(rules))
	rem := elapsed - share*time.Duration(len(rules))
	for i, r := range rules {
		timings[r] += share
		if i == 0 {
			timings[r] += rem
		}
	}
}

// fused runs the fused engine against the compiled program, sequentially
// or — when Options.Workers > 1 — on a work-stealing worker pool:
// workers claim range chunks off an atomic cursor and merge pooled
// per-chunk violation buffers into the collector (no mutex in the hot
// path). It returns the per-rule timings when Options.CollectTimings is
// set.
func (r *runner) fused(p *Program, rules []Rule, c *collector) map[Rule]time.Duration {
	r.bind = p.bindTo(r.g)
	w := wantRules(rules)
	if w.ds4 {
		// The full-sweep DS4 tasks range over the bound target
		// enumerations; materialize them before planning reads their
		// lengths. (Dirty-list runs plan their own chunks and skip this.)
		r.bind.ensureNodes()
	}
	workers := r.opts.Workers
	if workers <= 1 {
		workers = 1
	}
	chunks := r.planFusedChunks(w, r.opts.Workers > 1 && r.opts.ElementSharding, workers)
	return r.runChunks(chunks, rules, c)
}

// runChunks executes planned fused chunks — sequentially when the
// runner has one worker, else on the work-stealing pool — and returns
// per-rule timings when requested. The runner's context is honored at
// chunk boundaries: a cancelled context stops before the next chunk
// claim, never mid-chunk, so every merged buffer holds whole-chunk
// results and the claimed-chunk-completes merge invariant survives
// cancellation.
func (r *runner) runChunks(chunks []fusedChunk, rules []Rule, c *collector) map[Rule]time.Duration {
	var timings map[Rule]time.Duration
	if r.opts.CollectTimings {
		timings = make(map[Rule]time.Duration, len(rules))
		for _, rule := range rules {
			timings[rule] = 0 // every requested rule gets an entry
		}
	}

	if r.opts.Workers <= 1 {
		// Sequential: emit straight into the collector and keep scanning
		// passes after the cap fills until an emit is rejected — the same
		// exact-Truncated contract as the sequential rule-by-rule engine,
		// at pass rather than rule granularity.
		sc := newFusedScratch(r.bind.symCount)
		for _, t := range chunks {
			if c.truncated() || r.cancelled() {
				break
			}
			start := time.Now()
			t.run(r, sc, c.emit)
			if timings != nil {
				attribute(timings, t.rules(), time.Since(start))
			}
		}
		return timings
	}

	var (
		timingMu sync.Mutex
		cursor   atomic.Int64
		wg       sync.WaitGroup
	)
	for i := 0; i < r.opts.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sc := newFusedScratch(r.bind.symCount)
			for {
				idx := int(cursor.Add(1)) - 1
				if idx >= len(chunks) {
					return
				}
				// Cancellation is checked per claim: chunks already
				// running finish and merge; unstarted ones are abandoned.
				if r.cancelled() {
					return
				}
				// Chunks not yet started are skipped once the cap is
				// reached; a started chunk always runs to completion and
				// merges, so overflow among completed chunks is never
				// lost (see collector.merge).
				if c.full() {
					continue
				}
				t := chunks[idx]
				bufp := violationBufPool.Get().(*[]Violation)
				buf := (*bufp)[:0]
				emit := func(v Violation) { buf = append(buf, v) }
				start := time.Now()
				t.run(r, sc, emit)
				elapsed := time.Since(start)
				c.merge(buf)
				*bufp = buf[:0]
				violationBufPool.Put(bufp)
				if timings != nil {
					timingMu.Lock()
					attribute(timings, t.rules(), elapsed)
					timingMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return timings
}
