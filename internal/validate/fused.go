package validate

import (
	"fmt"
	"sync"
	"time"

	"pgschema/internal/pg"
	"pgschema/internal/schema"
	"pgschema/internal/values"
)

// The fused engine evaluates every applicable per-element rule in a
// single pass over the nodes and a single pass over the edges, instead
// of one full sweep per rule. Theorem 1's observation that all fifteen
// satisfaction rules are constant-depth conditions evaluable
// independently per graph element makes the fusion sound: the rules
// never exchange information, so interleaving them per element yields
// the same violation set as running them rule by rule. The differential
// test harness (differential_test.go) proves the equivalence across
// engines, worker counts, sharding, and modes.
//
// Two rules quantify globally and keep dedicated passes that share the
// resolution cache: DS4 needs the per-target incoming-edge view and DS7
// buckets nodes per type. Both run through the existing rule bodies with
// the runner's cache attached.

// nodePassRules are the rules the fused node pass evaluates, in paper
// order.
var nodePassRules = []Rule{WS1, WS4, DS1, DS2, DS3, DS5, DS6, SS1, SS2}

// edgePassRules are the rules the fused edge pass evaluates.
var edgePassRules = []Rule{WS2, WS3, SS3, SS4}

// fusedWant is the set of requested rules as branch-predictable flags
// for the fused inner loops.
type fusedWant struct {
	ws1, ws2, ws3, ws4             bool
	ds1, ds2, ds3, ds4, ds5, ds6, ds7 bool
	ss1, ss2, ss3, ss4             bool
}

func wantRules(rules []Rule) fusedWant {
	var w fusedWant
	for _, r := range rules {
		switch r {
		case WS1:
			w.ws1 = true
		case WS2:
			w.ws2 = true
		case WS3:
			w.ws3 = true
		case WS4:
			w.ws4 = true
		case DS1:
			w.ds1 = true
		case DS2:
			w.ds2 = true
		case DS3:
			w.ds3 = true
		case DS4:
			w.ds4 = true
		case DS5:
			w.ds5 = true
		case DS6:
			w.ds6 = true
		case DS7:
			w.ds7 = true
		case SS1:
			w.ss1 = true
		case SS2:
			w.ss2 = true
		case SS3:
			w.ss3 = true
		case SS4:
			w.ss4 = true
		}
	}
	return w
}

// active intersects a pass's rule list with the requested set.
func (w fusedWant) active(pass []Rule) []Rule {
	var out []Rule
	for _, r := range pass {
		switch r {
		case WS1:
			if !w.ws1 {
				continue
			}
		case WS2:
			if !w.ws2 {
				continue
			}
		case WS3:
			if !w.ws3 {
				continue
			}
		case WS4:
			if !w.ws4 {
				continue
			}
		case DS1:
			if !w.ds1 {
				continue
			}
		case DS2:
			if !w.ds2 {
				continue
			}
		case DS3:
			if !w.ds3 {
				continue
			}
		case DS5:
			if !w.ds5 {
				continue
			}
		case DS6:
			if !w.ds6 {
				continue
			}
		case SS1:
			if !w.ss1 {
				continue
			}
		case SS2:
			if !w.ss2 {
				continue
			}
		case SS3:
			if !w.ss3 {
				continue
			}
		case SS4:
			if !w.ss4 {
				continue
			}
		}
		out = append(out, r)
	}
	return out
}

// propInfo classifies one declared field of a node label once per run,
// so the inner loops never repeat the attribute/relationship test.
type propInfo struct {
	fd     *schema.FieldDef
	isAttr bool
}

// srcDecl is one relationship declaration applicable to a label on the
// source side, with its directive flags resolved once per run.
type srcDecl struct {
	fd                          *schema.FieldDef
	distinct, noLoops, required bool
}

// labelInfo is everything the fused passes need to know about one node
// label, resolved once per run.
type labelInfo struct {
	td     *schema.TypeDef     // nil when the label is undeclared
	fields map[string]propInfo // field name → classification (nil when td is nil)

	srcRel   []srcDecl           // relationship decls with label ∈ ConcreteTargets(owner)
	reqAttrs []*schema.FieldDef  // @required attribute decls applicable to the label (DS5)
	uftIn    []*schema.FieldDef  // @uniqueForTarget decls with label ∈ ConcreteTargets(base) (DS3)
}

// resolution is the per-run schema lookup cache shared by every fused
// pass (and, via the runner, by the dedicated DS4/DS7 passes): label →
// type, per-label field classification, per-label directive-bearing
// declarations, the subtype closure over the labels present in the
// graph, and the λ(v) ⊑S t node enumeration per named type.
type resolution struct {
	byLabel map[string]*labelInfo
	// sub[label][name] caches SubtypeNamed(label, name) for every label
	// in the graph and every type name a rule can ask about.
	sub map[string]map[string]bool
	// nodesOf caches nodesOfType for every named type of the schema.
	nodesOf map[string][]pg.NodeID
}

// newResolution builds the cache for one (schema, graph) pair.
func newResolution(s *schema.Schema, g *pg.Graph) *resolution {
	res := &resolution{
		byLabel: make(map[string]*labelInfo),
		sub:     make(map[string]map[string]bool),
		nodesOf: make(map[string][]pg.NodeID),
	}
	labels := g.Labels()
	for _, l := range labels {
		info := &labelInfo{td: s.Type(l)}
		if info.td != nil {
			info.fields = make(map[string]propInfo, len(info.td.Fields))
			for _, f := range info.td.Fields {
				info.fields[f.Name] = propInfo{fd: f, isAttr: s.IsAttribute(f)}
			}
		}
		res.byLabel[l] = info
	}

	// The subtype table covers every name a fused check can pass as the
	// supertype: declared type names (DS3/DS4 owners, DS7 types) and the
	// base type of every field (WS3, including attribute fields whose
	// base is a scalar).
	names := make(map[string]bool)
	for _, td := range s.Types() {
		names[td.Name] = true
		for _, f := range td.Fields {
			names[f.Type.Base()] = true
		}
	}
	for _, l := range labels {
		row := make(map[string]bool, len(names))
		for n := range names {
			row[n] = s.SubtypeNamed(l, n)
		}
		res.sub[l] = row
	}

	// Node enumeration per named type, mirroring runner.nodesOfType.
	for _, td := range s.Types() {
		switch td.Kind {
		case schema.Object, schema.Interface, schema.Union:
			var out []pg.NodeID
			for _, label := range s.ConcreteTargets(td.Name) {
				out = append(out, g.NodesLabeled(label)...)
			}
			res.nodesOf[td.Name] = out
		}
	}

	// Directive-bearing declarations, bucketed per applicable label in
	// declaration order (types sorted by name, fields in source order) —
	// the same order the rule-by-rule sweeps quantify in, so duplicate
	// declarations (object type + interface) keep their multiplicity.
	for _, td := range s.Types() {
		if td.Kind != schema.Object && td.Kind != schema.Interface {
			continue
		}
		for _, f := range td.Fields {
			switch {
			case s.IsRelationship(f):
				d := srcDecl{
					fd:       f,
					distinct: schema.HasDirective(f.Directives, schema.DirDistinct),
					noLoops:  schema.HasDirective(f.Directives, schema.DirNoLoops),
					required: schema.HasDirective(f.Directives, schema.DirRequired),
				}
				if d.distinct || d.noLoops || d.required {
					for _, l := range s.ConcreteTargets(f.Owner) {
						if info, ok := res.byLabel[l]; ok {
							info.srcRel = append(info.srcRel, d)
						}
					}
				}
				if schema.HasDirective(f.Directives, schema.DirUniqueForTarget) {
					for _, l := range s.ConcreteTargets(f.Type.Base()) {
						if info, ok := res.byLabel[l]; ok {
							info.uftIn = append(info.uftIn, f)
						}
					}
				}
			case s.IsAttribute(f):
				if schema.HasDirective(f.Directives, schema.DirRequired) {
					for _, l := range s.ConcreteTargets(f.Owner) {
						if info, ok := res.byLabel[l]; ok {
							info.reqAttrs = append(info.reqAttrs, f)
						}
					}
				}
			}
		}
	}
	return res
}

// fusedNodePass evaluates WS1, WS4, DS1, DS2, DS3, DS5, DS6, SS1, and
// SS2 for every node in the shard, emitting exactly the violations the
// rule-by-rule sweeps would.
func (r *runner) fusedNodePass(w fusedWant, emit emitFunc, shard, nShards int) {
	res := r.res
	for _, v := range r.g.Nodes() {
		if !nodeShard(v, shard, nShards) {
			continue
		}
		label := r.g.NodeLabel(v)
		info := res.byLabel[label]
		td := info.td

		// SS1: the label must be a declared object type.
		if w.ss1 && (td == nil || td.Kind != schema.Object) {
			emit(Violation{
				Rule: SS1, Node: v, Edge: -1, TypeName: label,
				Message: fmt.Sprintf("%s: label %q is not an object type of the schema", nodeRef(v), label),
			})
		}

		// WS1 + SS2 share the property iteration.
		if w.ws1 || w.ss2 {
			for _, name := range r.g.NodePropNames(v) {
				pi, declared := propInfo{}, false
				if info.fields != nil {
					pi, declared = info.fields[name]
				}
				if !declared {
					if w.ss2 {
						emit(Violation{
							Rule: SS2, Node: v, Edge: -1, TypeName: label, Property: name,
							Message: fmt.Sprintf("%s (%s): property %q is not declared as a field of %s", nodeRef(v), label, name, label),
						})
					}
					continue
				}
				if !pi.isAttr {
					if w.ss2 {
						emit(Violation{
							Rule: SS2, Node: v, Edge: -1, TypeName: label, Field: name, Property: name,
							Message: fmt.Sprintf("%s (%s): property %q corresponds to relationship field %s.%s of type %s, not an attribute",
								nodeRef(v), label, name, label, name, pi.fd.Type),
						})
					}
					continue
				}
				if w.ws1 {
					val, _ := r.g.NodeProp(v, name)
					if !r.s.MemberOfW(val, pi.fd.Type) {
						emit(Violation{
							Rule: WS1, Node: v, Edge: -1,
							TypeName: label, Field: name, Property: name,
							Message: fmt.Sprintf("%s (%s): property %q = %s is not in valuesW(%s)",
								nodeRef(v), label, name, val, pi.fd.Type),
						})
					}
				}
			}
		}

		// WS4: at most one edge per non-list field.
		if w.ws4 && td != nil {
			counts := make(map[string]int)
			for _, e := range r.g.OutEdges(v) {
				counts[r.g.EdgeLabel(e)]++
			}
			for f, n := range counts {
				if n < 2 {
					continue
				}
				fd := info.fields[f].fd
				if fd == nil || fd.Type.IsList() {
					continue
				}
				emit(Violation{
					Rule: WS4, Node: v, Edge: -1,
					TypeName: label, Field: f,
					Message: fmt.Sprintf("%s (%s): %d outgoing %q edges, but %s.%s has non-list type %s (at most one edge allowed)",
						nodeRef(v), label, n, f, label, f, fd.Type),
				})
			}
		}

		// Source-side directive rules: DS1, DS2, DS6.
		for _, d := range info.srcRel {
			if w.ds1 && d.distinct {
				seen := make(map[pg.NodeID]int)
				for _, e := range r.g.OutEdgesLabeled(v, d.fd.Name) {
					_, dst := r.g.Endpoints(e)
					seen[dst]++
					if seen[dst] == 2 {
						emit(Violation{
							Rule: DS1, Node: v, Edge: e,
							TypeName: d.fd.Owner, Field: d.fd.Name,
							Message: fmt.Sprintf("%s: multiple %q edges to %s violate @distinct on %s.%s",
								nodeRef(v), d.fd.Name, nodeRef(dst), d.fd.Owner, d.fd.Name),
						})
					}
				}
			}
			if w.ds2 && d.noLoops {
				for _, e := range r.g.OutEdgesLabeled(v, d.fd.Name) {
					if _, dst := r.g.Endpoints(e); dst == v {
						emit(Violation{
							Rule: DS2, Node: v, Edge: e,
							TypeName: d.fd.Owner, Field: d.fd.Name,
							Message: fmt.Sprintf("%s: %q loop edge violates @noLoops on %s.%s",
								nodeRef(v), d.fd.Name, d.fd.Owner, d.fd.Name),
						})
					}
				}
			}
			if w.ds6 && d.required {
				if r.g.OutDegreeLabeled(v, d.fd.Name) == 0 {
					emit(Violation{
						Rule: DS6, Node: v, Edge: -1,
						TypeName: d.fd.Owner, Field: d.fd.Name,
						Message: fmt.Sprintf("%s (%s): no outgoing %q edge, violating @required on %s.%s",
							nodeRef(v), label, d.fd.Name, d.fd.Owner, d.fd.Name),
					})
				}
			}
		}

		// DS5: @required attribute properties.
		if w.ds5 {
			for _, fd := range info.reqAttrs {
				val, ok := r.g.NodeProp(v, fd.Name)
				switch {
				case !ok:
					emit(Violation{
						Rule: DS5, Node: v, Edge: -1,
						TypeName: fd.Owner, Field: fd.Name, Property: fd.Name,
						Message: fmt.Sprintf("%s (%s): missing property %q required by @required on %s.%s",
							nodeRef(v), label, fd.Name, fd.Owner, fd.Name),
					})
				case fd.Type.IsList() && val.Kind() == values.KindList && val.Len() == 0:
					emit(Violation{
						Rule: DS5, Node: v, Edge: -1,
						TypeName: fd.Owner, Field: fd.Name, Property: fd.Name,
						Message: fmt.Sprintf("%s (%s): property %q is an empty list, but @required on %s.%s demands a nonempty list",
							nodeRef(v), label, fd.Name, fd.Owner, fd.Name),
					})
				}
			}
		}

		// DS3 (target side): at most one incoming @uniqueForTarget edge.
		if w.ds3 {
			for _, fd := range info.uftIn {
				n := 0
				var second pg.EdgeID = -1
				for _, e := range r.g.InEdgesLabeled(v, fd.Name) {
					src, _ := r.g.Endpoints(e)
					if !res.sub[r.g.NodeLabel(src)][fd.Owner] {
						continue
					}
					n++
					if n == 2 {
						second = e
					}
				}
				if n > 1 {
					emit(Violation{
						Rule: DS3, Node: v, Edge: second,
						TypeName: fd.Owner, Field: fd.Name,
						Message: fmt.Sprintf("%s: %d incoming %q edges from %s nodes violate @uniqueForTarget on %s.%s",
							nodeRef(v), n, fd.Name, fd.Owner, fd.Owner, fd.Name),
					})
				}
			}
		}
	}
}

// fusedEdgePass evaluates WS2, WS3, SS3, and SS4 for every edge in the
// shard.
func (r *runner) fusedEdgePass(w fusedWant, emit emitFunc, shard, nShards int) {
	res := r.res
	for _, e := range r.g.Edges() {
		if !edgeShard(e, shard, nShards) {
			continue
		}
		src, dst := r.g.Endpoints(e)
		srcLabel := r.g.NodeLabel(src)
		elabel := r.g.EdgeLabel(e)
		info := res.byLabel[srcLabel]
		var fd *schema.FieldDef
		isAttr := false
		if info.fields != nil {
			if pi, ok := info.fields[elabel]; ok {
				fd, isAttr = pi.fd, pi.isAttr
			}
		}

		// SS4: the edge label must be a declared relationship field.
		if w.ss4 {
			switch {
			case fd == nil:
				emit(Violation{
					Rule: SS4, Node: src, Edge: e, TypeName: srcLabel, Field: elabel,
					Message: fmt.Sprintf("%s: label %q is not a declared field of %s", edgeRef(e), elabel, srcLabel),
				})
			case isAttr:
				emit(Violation{
					Rule: SS4, Node: src, Edge: e, TypeName: srcLabel, Field: elabel,
					Message: fmt.Sprintf("%s: label %q corresponds to attribute field %s.%s of type %s, not a relationship",
						edgeRef(e), elabel, srcLabel, elabel, fd.Type),
				})
			}
		}

		// WS2 + SS3 share the edge-property iteration.
		if w.ws2 || w.ss3 {
			for _, name := range r.g.EdgePropNames(e) {
				var arg *schema.ArgDef
				if fd != nil {
					arg = fd.Arg(name)
				}
				if arg == nil {
					if w.ss3 {
						emit(Violation{
							Rule: SS3, Node: src, Edge: e, TypeName: srcLabel, Field: elabel, Property: name,
							Message: fmt.Sprintf("%s (%s): property %q is not a declared argument of %s.%s",
								edgeRef(e), elabel, name, srcLabel, elabel),
						})
					}
					continue
				}
				if w.ws2 {
					val, _ := r.g.EdgeProp(e, name)
					if !r.s.MemberOfW(val, arg.Type) {
						emit(Violation{
							Rule: WS2, Node: src, Edge: e,
							TypeName: fd.Owner, Field: fd.Name, Property: name,
							Message: fmt.Sprintf("%s (%s): property %q = %s is not in valuesW(%s)",
								edgeRef(e), fd.Name, name, val, arg.Type),
						})
					}
				}
			}
		}

		// WS3: the target's label must subtype the field's base type.
		if w.ws3 && fd != nil {
			base := fd.Type.Base()
			if !res.sub[r.g.NodeLabel(dst)][base] {
				emit(Violation{
					Rule: WS3, Node: dst, Edge: e,
					TypeName: srcLabel, Field: fd.Name,
					Message: fmt.Sprintf("%s (%s): target %s has label %q, which is not a subtype of basetype(%s) = %s",
						edgeRef(e), fd.Name, nodeRef(dst), r.g.NodeLabel(dst), fd.Type, base),
				})
			}
		}
	}
}

// fusedTask is one unit of fused work: a node-pass shard, an edge-pass
// shard, or a dedicated DS4/DS7 pass.
type fusedTask struct {
	kind           fusedTaskKind
	shard, nShards int
}

type fusedTaskKind int

const (
	taskNodePass fusedTaskKind = iota
	taskEdgePass
	taskDS4
	taskDS7
)

// run executes the task, emitting into emit.
func (t fusedTask) run(r *runner, w fusedWant) func(emitFunc) {
	switch t.kind {
	case taskNodePass:
		return func(emit emitFunc) { r.fusedNodePass(w, emit, t.shard, t.nShards) }
	case taskEdgePass:
		return func(emit emitFunc) { r.fusedEdgePass(w, emit, t.shard, t.nShards) }
	case taskDS4:
		return func(emit emitFunc) { r.ds4(emit, t.shard, t.nShards) }
	default:
		return func(emit emitFunc) { r.ds7(emit, 0, 1) }
	}
}

// rules returns the rules the task evaluates (already intersected with
// the requested set), for timing attribution.
func (t fusedTask) rules(w fusedWant) []Rule {
	switch t.kind {
	case taskNodePass:
		return w.active(nodePassRules)
	case taskEdgePass:
		return w.active(edgePassRules)
	case taskDS4:
		return []Rule{DS4}
	default:
		return []Rule{DS7}
	}
}

// fusedTasks plans the passes for the requested rules. With sharding,
// the node and edge passes (and DS4, which iterates target nodes) split
// into n shards; DS7 buckets globally and stays whole.
func fusedTasks(w fusedWant, sharded bool, n int) []fusedTask {
	var tasks []fusedTask
	addSharded := func(kind fusedTaskKind) {
		if sharded {
			for s := 0; s < n; s++ {
				tasks = append(tasks, fusedTask{kind, s, n})
			}
			return
		}
		tasks = append(tasks, fusedTask{kind, 0, 1})
	}
	if len(w.active(nodePassRules)) > 0 {
		addSharded(taskNodePass)
	}
	if len(w.active(edgePassRules)) > 0 {
		addSharded(taskEdgePass)
	}
	if w.ds4 {
		addSharded(taskDS4)
	}
	if w.ds7 {
		tasks = append(tasks, fusedTask{taskDS7, 0, 1})
	}
	return tasks
}

// attribute splits a pass's elapsed time across the rules it evaluated:
// each rule gets an equal share and the first rule absorbs the division
// remainder, so the per-rule durations sum exactly to the measured pass
// time. This is an attribution, not a per-rule measurement — the fused
// inner loop deliberately avoids per-rule clock reads.
func attribute(timings map[Rule]time.Duration, rules []Rule, elapsed time.Duration) {
	if len(rules) == 0 {
		return
	}
	share := elapsed / time.Duration(len(rules))
	rem := elapsed - share*time.Duration(len(rules))
	for i, r := range rules {
		timings[r] += share
		if i == 0 {
			timings[r] += rem
		}
	}
}

// fused runs the fused engine, sequentially or — when Options.Workers
// > 1 — on a worker pool with per-task violation buffers that merge
// into the collector once per task (no mutex in the hot path). It
// returns the per-rule timings when Options.CollectTimings is set.
func (r *runner) fused(rules []Rule, c *collector) map[Rule]time.Duration {
	r.res = newResolution(r.s, r.g)
	w := wantRules(rules)
	var timings map[Rule]time.Duration
	if r.opts.CollectTimings {
		timings = make(map[Rule]time.Duration, len(rules))
		for _, rule := range rules {
			timings[rule] = 0 // every requested rule gets an entry
		}
	}

	if r.opts.Workers <= 1 {
		// Sequential: emit straight into the collector and keep scanning
		// passes after the cap fills until an emit is rejected — the same
		// exact-Truncated contract as the sequential rule-by-rule engine,
		// at pass rather than rule granularity.
		for _, t := range fusedTasks(w, false, 1) {
			if c.truncated() {
				break
			}
			start := time.Now()
			t.run(r, w)(c.emit)
			if timings != nil {
				attribute(timings, t.rules(w), time.Since(start))
			}
		}
		return timings
	}

	tasks := fusedTasks(w, r.opts.ElementSharding, r.opts.Workers)
	var timingMu sync.Mutex
	ch := make(chan fusedTask)
	var wg sync.WaitGroup
	for i := 0; i < r.opts.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ch {
				// Tasks not yet started are skipped once the cap is
				// reached; a started task always runs to completion and
				// merges, so overflow among completed tasks is never
				// lost (see collector.merge).
				if c.full() {
					continue
				}
				var buf []Violation
				emit := func(v Violation) { buf = append(buf, v) }
				start := time.Now()
				t.run(r, w)(emit)
				elapsed := time.Since(start)
				c.merge(buf)
				if timings != nil {
					timingMu.Lock()
					attribute(timings, t.rules(w), elapsed)
					timingMu.Unlock()
				}
			}
		}()
	}
	for _, t := range tasks {
		ch <- t
	}
	close(ch)
	wg.Wait()
	return timings
}
