package validate

import (
	"fmt"
	"math/bits"
	"strings"
	"time"

	"pgschema/internal/pg"
	"pgschema/internal/sched"
	"pgschema/internal/schema"
	"pgschema/internal/values"
)

// The fused engine evaluates every applicable per-element rule in a
// single pass over the nodes and a single pass over the edges, instead
// of one full sweep per rule. Theorem 1's observation that all fifteen
// satisfaction rules are constant-depth conditions evaluable
// independently per graph element makes the fusion sound: the rules
// never exchange information, so interleaving them per element yields
// the same violation set as running them rule by rule. The differential
// test harness (differential_test.go) proves the equivalence across
// engines, worker counts, sharding, modes, and compiled programs.
//
// The passes run against a compiled Program bound to the graph
// (program.go) and scan the graph's columnar snapshot (pg.Snapshot):
// flat label arrays, CSR adjacency of live edges, flattened property
// rows, and per-sym presence bitsets, so the hot loops touch contiguous
// memory instead of chasing node/edge structs. Two rules quantify
// globally: DS4 iterates each @requiredForTarget declaration's
// precomputed target enumeration (chunkable like the passes), and DS7
// buckets nodes per type and stays a single task.
//
// Parallel runs split every pass into many contiguous element chunks
// claimed off an atomic cursor — work stealing without deques. A skewed
// graph (all violations, or all adjacency, concentrated in one region)
// no longer pins one worker while the rest idle behind a static modulo
// split: whoever finishes a chunk first claims the next one. Chunks are
// ranges, not modulo classes, so every element is wholly processed by
// one chunk and the per-element dedup keys (WS4/DS1 by source node,
// DS3/DS4 by target node) keep the violation set byte-identical.

// nodePassRules are the rules the fused node pass evaluates, in paper
// order.
var nodePassRules = []Rule{WS1, WS4, DS1, DS2, DS3, DS5, DS6, SS1, SS2}

// edgePassRules are the rules the fused edge pass evaluates.
var edgePassRules = []Rule{WS2, WS3, SS3, SS4}

// fusedWant is the set of requested rules as branch-predictable flags
// for the fused inner loops.
type fusedWant struct {
	ws1, ws2, ws3, ws4                bool
	ds1, ds2, ds3, ds4, ds5, ds6, ds7 bool
	ss1, ss2, ss3, ss4                bool
}

func wantRules(rules []Rule) fusedWant {
	var w fusedWant
	for _, r := range rules {
		switch r {
		case WS1:
			w.ws1 = true
		case WS2:
			w.ws2 = true
		case WS3:
			w.ws3 = true
		case WS4:
			w.ws4 = true
		case DS1:
			w.ds1 = true
		case DS2:
			w.ds2 = true
		case DS3:
			w.ds3 = true
		case DS4:
			w.ds4 = true
		case DS5:
			w.ds5 = true
		case DS6:
			w.ds6 = true
		case DS7:
			w.ds7 = true
		case SS1:
			w.ss1 = true
		case SS2:
			w.ss2 = true
		case SS3:
			w.ss3 = true
		case SS4:
			w.ss4 = true
		}
	}
	return w
}

// active intersects a pass's rule list with the requested set.
func (w fusedWant) active(pass []Rule) []Rule {
	var out []Rule
	for _, r := range pass {
		switch r {
		case WS1:
			if !w.ws1 {
				continue
			}
		case WS2:
			if !w.ws2 {
				continue
			}
		case WS3:
			if !w.ws3 {
				continue
			}
		case WS4:
			if !w.ws4 {
				continue
			}
		case DS1:
			if !w.ds1 {
				continue
			}
		case DS2:
			if !w.ds2 {
				continue
			}
		case DS3:
			if !w.ds3 {
				continue
			}
		case DS5:
			if !w.ds5 {
				continue
			}
		case DS6:
			if !w.ds6 {
				continue
			}
		case SS1:
			if !w.ss1 {
				continue
			}
		case SS2:
			if !w.ss2 {
				continue
			}
		case SS3:
			if !w.ss3 {
				continue
			}
		case SS4:
			if !w.ss4 {
				continue
			}
		}
		out = append(out, r)
	}
	return out
}

// obligMask is a label's precomputed rule-group obligations: which of
// the per-node rule groups can possibly fire for a node of that label.
// The dense node kernel ANDs a node's label mask with the run's want
// mask, so a node whose label owes nothing to the requested rules
// costs two loads and one branch instead of four empty slice loops.
type obligMask uint16

const (
	obSS1 obligMask = 1 << iota // label is not a declared object type
	obWS4                       // label has a non-list field
	obDS1                       // a srcRel declaration carries @distinct
	obDS2                       // a srcRel declaration carries @noLoops
	obDS3                       // label is on the target side of @uniqueForTarget
	obDS5                       // label has @required attributes
	obDS6                       // a srcRel declaration carries @required
)

// wantMask projects the requested rules onto the obligation bits.
func wantMask(w fusedWant) obligMask {
	var m obligMask
	if w.ss1 {
		m |= obSS1
	}
	if w.ws4 {
		m |= obWS4
	}
	if w.ds1 {
		m |= obDS1
	}
	if w.ds2 {
		m |= obDS2
	}
	if w.ds3 {
		m |= obDS3
	}
	if w.ds5 {
		m |= obDS5
	}
	if w.ds6 {
		m |= obDS6
	}
	return m
}

// fusedScratch is per-worker reusable state for the node pass, so the
// violation-free path allocates nothing per node: a dense edge-label
// counter (indexed by Sym, kept all-zero between nodes via the touched
// list) for WS4 and a target-count map (cleared, not reallocated) for
// DS1.
type fusedScratch struct {
	counts  []int32
	touched []pg.Sym
	seen    map[pg.NodeID]int32
	dsts    []pg.NodeID // DS1 small-degree dedup list (map-free)
}

func newFusedScratch(symCount int) *fusedScratch {
	return &fusedScratch{
		counts: make([]int32, symCount),
		seen:   make(map[pg.NodeID]int32),
	}
}

// resize readies a pooled scratch for a graph with the given symbol
// count. The counts slice only ever grows; a fresh slice is zeroed and
// a reused one was restored to all-zero by the WS4 loop's invariant.
func (sc *fusedScratch) resize(symCount int) {
	if len(sc.counts) < symCount {
		sc.counts = make([]int32, symCount)
	}
}

// fusedNodePass evaluates WS1, WS4, DS1, DS2, DS3, DS5, DS6, SS1, and
// SS2 for every live node in [lo, hi), emitting exactly the violations
// the rule-by-rule sweeps would. All reads go through the binding's
// columnar snapshot. A nil list means the dense ID range [lo, hi);
// otherwise the pass visits list[lo:hi] — the shape incremental
// revalidation chunks its dirty-node set into.
func (r *runner) fusedNodePass(w fusedWant, emit emitFunc, list []pg.NodeID, lo, hi int, sc *fusedScratch) {
	b := r.bind
	snap := b.snap
	for vi := lo; vi < hi; vi++ {
		v := pg.NodeID(vi)
		if list != nil {
			v = list[vi]
		}
		vls := snap.NodeLabelSym(v)
		if vls == pg.NoSym {
			continue // removed node
		}
		bl := b.labels[vls]
		td := bl.td
		label := bl.label

		// SS1: the label must be a declared object type.
		if w.ss1 && (td == nil || td.Kind != schema.Object) && !r.drop() {
			emit(Violation{
				Rule: SS1, Node: v, Edge: -1, TypeName: label,
				Message: fmt.Sprintf("%s: label %q is not an object type of the schema", nodeRef(v), label),
			})
		}

		// WS1 + SS2 share the flat property row.
		if w.ws1 || w.ss2 {
			plo, phi := snap.NodePropRow(v)
			for i := plo; i < phi; i++ {
				pr := snap.NodePropAt(i)
				var slot fieldSlot
				if bl.fields != nil {
					slot = bl.fields[pr.Sym]
				}
				if slot.fd == nil {
					if w.ss2 && !r.drop() {
						emit(Violation{
							Rule: SS2, Node: v, Edge: -1, TypeName: label, Property: pr.Name,
							Message: fmt.Sprintf("%s (%s): property %q is not declared as a field of %s", nodeRef(v), label, pr.Name, label),
						})
					}
					continue
				}
				if !slot.isAttr {
					if w.ss2 && !r.drop() {
						emit(Violation{
							Rule: SS2, Node: v, Edge: -1, TypeName: label, Field: pr.Name, Property: pr.Name,
							Message: fmt.Sprintf("%s (%s): property %q corresponds to relationship field %s.%s of type %s, not an attribute",
								nodeRef(v), label, pr.Name, label, pr.Name, slot.fd.Type),
						})
					}
					continue
				}
				if w.ws1 && !slot.check(pr.Value) && !r.drop() {
					emit(Violation{
						Rule: WS1, Node: v, Edge: -1,
						TypeName: label, Field: pr.Name, Property: pr.Name,
						Message: fmt.Sprintf("%s (%s): property %q = %s is not in valuesW(%s)",
							nodeRef(v), label, pr.Name, pr.Value, slot.fd.Type),
					})
				}
			}
		}

		// WS4: at most one edge per non-list field. Count out-edges per
		// label Sym in the dense scratch counter; the snapshot's CSR
		// adjacency holds live edges only.
		if w.ws4 && td != nil {
			sc.touched = sc.touched[:0]
			for _, e := range snap.OutEdgesOf(v) {
				ls := snap.EdgeLabelSym(e)
				if sc.counts[ls] == 0 {
					sc.touched = append(sc.touched, ls)
				}
				sc.counts[ls]++
			}
			for _, ls := range sc.touched {
				n := sc.counts[ls]
				sc.counts[ls] = 0
				if n < 2 {
					continue
				}
				slot := bl.fields[ls]
				if slot.fd == nil || slot.fd.Type.IsList() || r.drop() {
					continue
				}
				f := r.g.SymName(ls)
				emit(Violation{
					Rule: WS4, Node: v, Edge: -1,
					TypeName: label, Field: f,
					Message: fmt.Sprintf("%s (%s): %d outgoing %q edges, but %s.%s has non-list type %s (at most one edge allowed)",
						nodeRef(v), label, n, f, label, f, slot.fd.Type),
				})
			}
		}

		// Source-side directive rules: DS1, DS2, DS6.
		for i := range bl.srcRel {
			d := &bl.srcRel[i]
			if w.ds1 && d.distinct {
				for _, e := range snap.OutEdgesOf(v) {
					if snap.EdgeLabelSym(e) != d.sym {
						continue
					}
					_, dst := snap.Endpoints(e)
					sc.seen[dst]++
					if sc.seen[dst] == 2 && !r.drop() {
						emit(Violation{
							Rule: DS1, Node: v, Edge: e,
							TypeName: d.fd.Owner, Field: d.fd.Name,
							Message: fmt.Sprintf("%s: multiple %q edges to %s violate @distinct on %s.%s",
								nodeRef(v), d.fd.Name, nodeRef(dst), d.fd.Owner, d.fd.Name),
						})
					}
				}
				if len(sc.seen) > 0 {
					clear(sc.seen)
				}
			}
			if w.ds2 && d.noLoops {
				for _, e := range snap.OutEdgesOf(v) {
					if snap.EdgeLabelSym(e) != d.sym {
						continue
					}
					if _, dst := snap.Endpoints(e); dst == v && !r.drop() {
						emit(Violation{
							Rule: DS2, Node: v, Edge: e,
							TypeName: d.fd.Owner, Field: d.fd.Name,
							Message: fmt.Sprintf("%s: %q loop edge violates @noLoops on %s.%s",
								nodeRef(v), d.fd.Name, d.fd.Owner, d.fd.Name),
						})
					}
				}
			}
			if w.ds6 && d.required {
				found := false
				for _, e := range snap.OutEdgesOf(v) {
					if snap.EdgeLabelSym(e) == d.sym {
						found = true
						break
					}
				}
				if !found && !r.drop() {
					emit(Violation{
						Rule: DS6, Node: v, Edge: -1,
						TypeName: d.fd.Owner, Field: d.fd.Name,
						Message: fmt.Sprintf("%s (%s): no outgoing %q edge, violating @required on %s.%s",
							nodeRef(v), label, d.fd.Name, d.fd.Owner, d.fd.Name),
					})
				}
			}
		}

		// DS5: @required attribute properties. Presence is one word load
		// in the per-sym bitset; the value is fetched only for list-typed
		// fields, which must additionally be nonempty.
		if w.ds5 {
			for i := range bl.reqAttrs {
				req := &bl.reqAttrs[i]
				if !snap.NodeHasProp(v, req.sym) {
					if !r.drop() {
						emit(Violation{
							Rule: DS5, Node: v, Edge: -1,
							TypeName: req.fd.Owner, Field: req.fd.Name, Property: req.fd.Name,
							Message: fmt.Sprintf("%s (%s): missing property %q required by @required on %s.%s",
								nodeRef(v), label, req.fd.Name, req.fd.Owner, req.fd.Name),
						})
					}
					continue
				}
				if req.fd.Type.IsList() {
					if val, ok := snap.NodePropBySym(v, req.sym); ok && val.Kind() == values.KindList && val.Len() == 0 && !r.drop() {
						emit(Violation{
							Rule: DS5, Node: v, Edge: -1,
							TypeName: req.fd.Owner, Field: req.fd.Name, Property: req.fd.Name,
							Message: fmt.Sprintf("%s (%s): property %q is an empty list, but @required on %s.%s demands a nonempty list",
								nodeRef(v), label, req.fd.Name, req.fd.Owner, req.fd.Name),
						})
					}
				}
			}
		}

		// DS3 (target side): at most one incoming @uniqueForTarget edge.
		if w.ds3 {
			for i := range bl.uftIn {
				u := &bl.uftIn[i]
				n := 0
				var second pg.EdgeID = -1
				for _, e := range snap.InEdgesOf(v) {
					if snap.EdgeLabelSym(e) != u.sym {
						continue
					}
					src, _ := snap.Endpoints(e)
					if !b.labels[snap.NodeLabelSym(src)].sub[u.ownerID] {
						continue
					}
					n++
					if n == 2 {
						second = e
					}
				}
				if n > 1 && !r.drop() {
					emit(Violation{
						Rule: DS3, Node: v, Edge: second,
						TypeName: u.fd.Owner, Field: u.fd.Name,
						Message: fmt.Sprintf("%s: %d incoming %q edges from %s nodes violate @uniqueForTarget on %s.%s",
							nodeRef(v), n, u.fd.Name, u.fd.Owner, u.fd.Owner, u.fd.Name),
					})
				}
			}
		}
	}
}

// maskedWord returns set[wi] restricted to the bits whose element IDs
// lie in [lo, hi) — the boundary masks of a word-at-a-time walk over a
// chunk range. Interior words pass through untouched.
func maskedWord(set []uint64, wi, lo, hi int) uint64 {
	word := set[wi]
	if base := wi << 6; base < lo {
		word &= ^uint64(0) << (uint(lo) & 63)
	}
	if end := hi - wi<<6; end < 64 {
		word &= 1<<uint(end) - 1
	}
	return word
}

// nodeKernels runs the word-level rule kernels over [lo, hi): SS1
// (every live node of a non-object-type label violates) and DS5
// (@required attribute presence) are per-label set operations — the
// label's node bitset against the property-presence bitsets — so on a
// conformant graph they cost one AND-NOT per 64 nodes and touch no
// per-node state at all.
func (r *runner) nodeKernels(w fusedWant, emit emitFunc, kern *boundKernels, lo, hi int) {
	b := r.bind
	snap := b.snap
	wlo, whi := lo>>6, (hi+63)>>6
	for symi, set := range kern.labelBits {
		if set == nil {
			continue
		}
		bl := b.labels[symi]
		label := bl.label
		if w.ss1 && bl.oblig&obSS1 != 0 {
			for wi := wlo; wi < whi; wi++ {
				word := maskedWord(set, wi, lo, hi)
				for word != 0 {
					v := pg.NodeID(wi<<6 + bits.TrailingZeros64(word))
					word &= word - 1
					if r.drop() {
						continue
					}
					emit(Violation{
						Rule: SS1, Node: v, Edge: -1, TypeName: label,
						Message: fmt.Sprintf("%s: label %q is not an object type of the schema", nodeRef(v), label),
					})
				}
			}
		}
		if w.ds5 && bl.oblig&obDS5 != 0 {
			for i := range bl.reqAttrs {
				req := &bl.reqAttrs[i]
				pwords := snap.NodePropWords(req.sym)
				isList := req.fd.Type.IsList()
				for wi := wlo; wi < whi; wi++ {
					labelWord := maskedWord(set, wi, lo, hi)
					if labelWord == 0 {
						continue
					}
					var have uint64
					if wi < len(pwords) {
						have = pwords[wi]
					}
					miss := labelWord &^ have
					for miss != 0 {
						v := pg.NodeID(wi<<6 + bits.TrailingZeros64(miss))
						miss &= miss - 1
						if r.drop() {
							continue
						}
						emit(Violation{
							Rule: DS5, Node: v, Edge: -1,
							TypeName: req.fd.Owner, Field: req.fd.Name, Property: req.fd.Name,
							Message: fmt.Sprintf("%s (%s): missing property %q required by @required on %s.%s",
								nodeRef(v), label, req.fd.Name, req.fd.Owner, req.fd.Name),
						})
					}
					if isList {
						present := labelWord & have
						for present != 0 {
							v := pg.NodeID(wi<<6 + bits.TrailingZeros64(present))
							present &= present - 1
							if val, ok := snap.NodePropBySym(v, req.sym); ok && val.Kind() == values.KindList && val.Len() == 0 && !r.drop() {
								emit(Violation{
									Rule: DS5, Node: v, Edge: -1,
									TypeName: req.fd.Owner, Field: req.fd.Name, Property: req.fd.Name,
									Message: fmt.Sprintf("%s (%s): property %q is an empty list, but @required on %s.%s demands a nonempty list",
										nodeRef(v), label, req.fd.Name, req.fd.Owner, req.fd.Name),
								})
							}
						}
					}
				}
			}
		}
	}
}

// ds1MapThreshold is the out-degree above which DS1's duplicate-target
// detection switches from the linear scan over the scratch list to the
// map — the list is allocation- and hash-free but quadratic in degree.
const ds1MapThreshold = 128

// fusedNodePassDense is the dense-range node pass: SS1 and DS5 run as
// word kernels, and the remaining rules walk the live-node bitset with
// bits.TrailingZeros64, gating each node's body on its label's
// obligation mask — so a conformant node with no properties and no
// obligations costs a handful of word operations, with no per-rule
// branches. It emits exactly the violation set fusedNodePass emits over
// the same range (the order differs; the collector sorts canonically).
func (r *runner) fusedNodePassDense(w fusedWant, emit emitFunc, lo, hi int, sc *fusedScratch) {
	b := r.bind
	snap := b.snap
	kern := b.kernels()
	if w.ss1 || w.ds5 {
		r.nodeKernels(w, emit, kern, lo, hi)
	}
	walk := wantMask(w) &^ (obSS1 | obDS5)
	needProps := w.ws1 || w.ss2
	if walk == 0 && !needProps {
		return
	}
	labelCol := snap.NodeLabelColumn()
	live := kern.liveNodes
	wlo, whi := lo>>6, (hi+63)>>6
	for wi := wlo; wi < whi; wi++ {
		word := maskedWord(live, wi, lo, hi)
		for word != 0 {
			v := pg.NodeID(wi<<6 + bits.TrailingZeros64(word))
			word &= word - 1
			bl := b.labels[labelCol[v]]
			need := bl.oblig & walk
			plo, phi := 0, 0
			if needProps {
				plo, phi = snap.NodePropRow(v)
			}
			if need == 0 && plo == phi {
				continue
			}
			label := bl.label

			// WS1 + SS2 share the flat property row.
			{
				for i := plo; i < phi; i++ {
					pr := snap.NodePropAt(i)
					var slot fieldSlot
					if bl.fields != nil {
						slot = bl.fields[pr.Sym]
					}
					if slot.fd == nil {
						if w.ss2 && !r.drop() {
							emit(Violation{
								Rule: SS2, Node: v, Edge: -1, TypeName: label, Property: pr.Name,
								Message: fmt.Sprintf("%s (%s): property %q is not declared as a field of %s", nodeRef(v), label, pr.Name, label),
							})
						}
						continue
					}
					if !slot.isAttr {
						if w.ss2 && !r.drop() {
							emit(Violation{
								Rule: SS2, Node: v, Edge: -1, TypeName: label, Field: pr.Name, Property: pr.Name,
								Message: fmt.Sprintf("%s (%s): property %q corresponds to relationship field %s.%s of type %s, not an attribute",
									nodeRef(v), label, pr.Name, label, pr.Name, slot.fd.Type),
							})
						}
						continue
					}
					if w.ws1 && !slot.check(pr.Value) && !r.drop() {
						emit(Violation{
							Rule: WS1, Node: v, Edge: -1,
							TypeName: label, Field: pr.Name, Property: pr.Name,
							Message: fmt.Sprintf("%s (%s): property %q = %s is not in valuesW(%s)",
								nodeRef(v), label, pr.Name, pr.Value, slot.fd.Type),
						})
					}
				}
			}

			// WS4: only a node with ≥ 2 out-edges can repeat a label.
			if need&obWS4 != 0 && snap.OutDegree(v) >= 2 {
				sc.touched = sc.touched[:0]
				for _, e := range snap.OutEdgesOf(v) {
					ls := snap.EdgeLabelSym(e)
					if sc.counts[ls] == 0 {
						sc.touched = append(sc.touched, ls)
					}
					sc.counts[ls]++
				}
				for _, ls := range sc.touched {
					n := sc.counts[ls]
					sc.counts[ls] = 0
					if n < 2 {
						continue
					}
					slot := bl.fields[ls]
					if slot.fd == nil || slot.fd.Type.IsList() || r.drop() {
						continue
					}
					f := r.g.SymName(ls)
					emit(Violation{
						Rule: WS4, Node: v, Edge: -1,
						TypeName: label, Field: f,
						Message: fmt.Sprintf("%s (%s): %d outgoing %q edges, but %s.%s has non-list type %s (at most one edge allowed)",
							nodeRef(v), label, n, f, label, f, slot.fd.Type),
					})
				}
			}

			// Source-side directive rules, fused into one adjacency scan
			// per declaration (DS1 + DS2 + DS6 together; a @required-only
			// declaration breaks at the first matching edge).
			if need&(obDS1|obDS2|obDS6) != 0 {
				for i := range bl.srcRel {
					d := &bl.srcRel[i]
					doDS1 := w.ds1 && d.distinct
					doDS2 := w.ds2 && d.noLoops
					doDS6 := w.ds6 && d.required
					if !doDS1 && !doDS2 && !doDS6 {
						continue
					}
					edges := snap.OutEdgesOf(v)
					found := false
					if doDS1 || doDS2 {
						useMap := doDS1 && len(edges) > ds1MapThreshold
						if doDS1 && !useMap {
							sc.dsts = sc.dsts[:0]
						}
						for _, e := range edges {
							if snap.EdgeLabelSym(e) != d.sym {
								continue
							}
							found = true
							_, dst := snap.Endpoints(e)
							if doDS2 && dst == v && !r.drop() {
								emit(Violation{
									Rule: DS2, Node: v, Edge: e,
									TypeName: d.fd.Owner, Field: d.fd.Name,
									Message: fmt.Sprintf("%s: %q loop edge violates @noLoops on %s.%s",
										nodeRef(v), d.fd.Name, d.fd.Owner, d.fd.Name),
								})
							}
							if doDS1 {
								dup := int32(0)
								if useMap {
									sc.seen[dst]++
									dup = sc.seen[dst] - 1
								} else {
									for _, prev := range sc.dsts {
										if prev == dst {
											dup++
										}
									}
									sc.dsts = append(sc.dsts, dst)
								}
								if dup == 1 && !r.drop() {
									emit(Violation{
										Rule: DS1, Node: v, Edge: e,
										TypeName: d.fd.Owner, Field: d.fd.Name,
										Message: fmt.Sprintf("%s: multiple %q edges to %s violate @distinct on %s.%s",
											nodeRef(v), d.fd.Name, nodeRef(dst), d.fd.Owner, d.fd.Name),
									})
								}
							}
						}
						if doDS1 && useMap && len(sc.seen) > 0 {
							clear(sc.seen)
						}
					} else {
						for _, e := range edges {
							if snap.EdgeLabelSym(e) == d.sym {
								found = true
								break
							}
						}
					}
					if doDS6 && !found && !r.drop() {
						emit(Violation{
							Rule: DS6, Node: v, Edge: -1,
							TypeName: d.fd.Owner, Field: d.fd.Name,
							Message: fmt.Sprintf("%s (%s): no outgoing %q edge, violating @required on %s.%s",
								nodeRef(v), label, d.fd.Name, d.fd.Owner, d.fd.Name),
						})
					}
				}
			}

			// DS3 (target side): at most one incoming @uniqueForTarget edge.
			if need&obDS3 != 0 {
				for i := range bl.uftIn {
					u := &bl.uftIn[i]
					n := 0
					var second pg.EdgeID = -1
					for _, e := range snap.InEdgesOf(v) {
						if snap.EdgeLabelSym(e) != u.sym {
							continue
						}
						src, _ := snap.Endpoints(e)
						if !b.labels[snap.NodeLabelSym(src)].sub[u.ownerID] {
							continue
						}
						n++
						if n == 2 {
							second = e
						}
					}
					if n > 1 && !r.drop() {
						emit(Violation{
							Rule: DS3, Node: v, Edge: second,
							TypeName: u.fd.Owner, Field: u.fd.Name,
							Message: fmt.Sprintf("%s: %d incoming %q edges from %s nodes violate @uniqueForTarget on %s.%s",
								nodeRef(v), n, u.fd.Name, u.fd.Owner, u.fd.Owner, u.fd.Name),
						})
					}
				}
			}
		}
	}
}

// fusedEdgePass evaluates WS2, WS3, SS3, and SS4 for every live edge in
// [lo, hi), reading the snapshot's flat edge columns. As in
// fusedNodePass, a non-nil list switches the pass from the dense ID
// range to list[lo:hi].
func (r *runner) fusedEdgePass(w fusedWant, emit emitFunc, list []pg.EdgeID, lo, hi int) {
	b := r.bind
	snap := b.snap
	for ei := lo; ei < hi; ei++ {
		e := pg.EdgeID(ei)
		if list != nil {
			e = list[ei]
		}
		els := snap.EdgeLabelSym(e)
		if els == pg.NoSym {
			continue // removed edge
		}
		r.fusedEdgeCheck(w, emit, e, els)
	}
}

// fusedEdgePassDense is fusedEdgePass over the dense ID range [lo, hi),
// walking the live-edge bitset word-at-a-time so tombstones cost word
// operations instead of a per-element label load and branch.
func (r *runner) fusedEdgePassDense(w fusedWant, emit emitFunc, lo, hi int) {
	b := r.bind
	labelCol := b.snap.EdgeLabelColumn()
	live := b.kernels().liveEdges
	wlo, whi := lo>>6, (hi+63)>>6
	for wi := wlo; wi < whi; wi++ {
		word := maskedWord(live, wi, lo, hi)
		for word != 0 {
			e := pg.EdgeID(wi<<6 + bits.TrailingZeros64(word))
			word &= word - 1
			r.fusedEdgeCheck(w, emit, e, labelCol[e])
		}
	}
}

// fusedEdgeCheck evaluates the edge-pass rules for one live edge — the
// shared body of the list and dense edge passes.
func (r *runner) fusedEdgeCheck(w fusedWant, emit emitFunc, e pg.EdgeID, els pg.Sym) {
	b := r.bind
	snap := b.snap
	{
		src, dst := snap.Endpoints(e)
		srcInfo := b.labels[snap.NodeLabelSym(src)]
		srcLabel := srcInfo.label
		elabel := r.g.SymName(els)
		var slot fieldSlot
		if srcInfo.fields != nil {
			slot = srcInfo.fields[els]
		}
		fd := slot.fd

		// SS4: the edge label must be a declared relationship field.
		if w.ss4 {
			switch {
			case fd == nil:
				if !r.drop() {
					emit(Violation{
						Rule: SS4, Node: src, Edge: e, TypeName: srcLabel, Field: elabel,
						Message: fmt.Sprintf("%s: label %q is not a declared field of %s", edgeRef(e), elabel, srcLabel),
					})
				}
			case slot.isAttr:
				if !r.drop() {
					emit(Violation{
						Rule: SS4, Node: src, Edge: e, TypeName: srcLabel, Field: elabel,
						Message: fmt.Sprintf("%s: label %q corresponds to attribute field %s.%s of type %s, not a relationship",
							edgeRef(e), elabel, srcLabel, elabel, fd.Type),
					})
				}
			}
		}

		// WS2 + SS3 share the flat edge-property row.
		if w.ws2 || w.ss3 {
			plo, phi := snap.EdgePropRow(e)
			for i := plo; i < phi; i++ {
				pr := snap.EdgePropAt(i)
				var arg *boundArg
				for j := range slot.args {
					if slot.args[j].sym == pr.Sym {
						arg = &slot.args[j]
						break
					}
				}
				if arg == nil {
					if w.ss3 && !r.drop() {
						emit(Violation{
							Rule: SS3, Node: src, Edge: e, TypeName: srcLabel, Field: elabel, Property: pr.Name,
							Message: fmt.Sprintf("%s (%s): property %q is not a declared argument of %s.%s",
								edgeRef(e), elabel, pr.Name, srcLabel, elabel),
						})
					}
					continue
				}
				if w.ws2 && !arg.check(pr.Value) && !r.drop() {
					emit(Violation{
						Rule: WS2, Node: src, Edge: e,
						TypeName: fd.Owner, Field: fd.Name, Property: pr.Name,
						Message: fmt.Sprintf("%s (%s): property %q = %s is not in valuesW(%s)",
							edgeRef(e), fd.Name, pr.Name, pr.Value, arg.arg.Type),
					})
				}
			}
		}

		// WS3: the target's label must subtype the field's base type.
		if w.ws3 && fd != nil {
			dls := snap.NodeLabelSym(dst)
			if !b.labels[dls].sub[slot.baseID] && !r.drop() {
				base := fd.Type.Base()
				emit(Violation{
					Rule: WS3, Node: dst, Edge: e,
					TypeName: srcLabel, Field: fd.Name,
					Message: fmt.Sprintf("%s (%s): target %s has label %q, which is not a subtype of basetype(%s) = %s",
						edgeRef(e), fd.Name, nodeRef(dst), r.g.SymName(dls), fd.Type, base),
				})
			}
		}
	}
}

// ds4Fused evaluates DS4 for the declaration's target nodes in [lo, hi)
// of its bound enumeration; decl < 0 means every declaration over its
// full range (the unchunked task shape). Emitted violations match
// runner.ds4 byte for byte: the declarations are compiled in
// relationshipDeclarations order and the targets come from the same
// bound enumeration ds4 iterates.
func (r *runner) ds4Fused(emit emitFunc, decl, lo, hi int) {
	b := r.bind
	if decl < 0 {
		for d := range b.reqTargets {
			r.ds4Decl(emit, &b.reqTargets[d], 0, len(b.reqTargets[d].targets))
		}
		return
	}
	r.ds4Decl(emit, &b.reqTargets[decl], lo, hi)
}

func (r *runner) ds4Decl(emit emitFunc, rt *boundReqTarget, lo, hi int) {
	for _, v2 := range rt.targets[lo:hi] {
		r.ds4Check(emit, rt, v2)
	}
}

// ds4Check tests one candidate target node against one declaration —
// the shared kernel of the full enumeration sweep and the dirty pass.
func (r *runner) ds4Check(emit emitFunc, rt *boundReqTarget, v2 pg.NodeID) {
	b := r.bind
	snap := b.snap
	found := false
	for _, e := range snap.InEdgesOf(v2) {
		if snap.EdgeLabelSym(e) != rt.sym {
			continue
		}
		src, _ := snap.Endpoints(e)
		if b.labels[snap.NodeLabelSym(src)].sub[rt.ownerID] {
			found = true
			break
		}
	}
	if !found && !r.drop() {
		emit(Violation{
			Rule: DS4, Node: v2, Edge: -1,
			TypeName: rt.fd.Owner, Field: rt.fd.Name,
			Message: fmt.Sprintf("%s (%s): no incoming %q edge from a %s node, violating @requiredForTarget on %s.%s",
				nodeRef(v2), r.g.SymName(snap.NodeLabelSym(v2)), rt.fd.Name, rt.fd.Owner, rt.fd.Owner, rt.fd.Name),
		})
	}
}

// ds4DirtyPass evaluates every DS4 declaration against the candidate
// nodes in list[lo:hi]: a node is a target of a declaration iff its
// current label is in the declaration's concrete-target sym set, the
// exact membership the full enumeration encodes — so checking dirty
// candidates against targetSyms yields the same violations a full
// sweep would, without materializing any enumeration.
func (r *runner) ds4DirtyPass(emit emitFunc, list []pg.NodeID, lo, hi int) {
	b := r.bind
	snap := b.snap
	for d := range b.reqTargets {
		rt := &b.reqTargets[d]
		for _, v := range list[lo:hi] {
			vls := snap.NodeLabelSym(v)
			if vls == pg.NoSym || !rt.targetSyms[vls] {
				continue
			}
			r.ds4Check(emit, rt, v)
		}
	}
}

// fusedChunk is one stealable unit of fused work: a contiguous element
// range of a node pass, edge pass, or one DS4 declaration's target
// enumeration — or the whole DS7 pass, which buckets globally. A
// non-nil nodes/edges list redirects the range into that list, and each
// chunk carries its own rule set — incremental revalidation chunks its
// dirty sets this way, with different rules active per region.
type fusedChunk struct {
	kind   fusedTaskKind
	decl   int // DS4: index into binding.reqTargets; -1 = all
	lo, hi int
	w      fusedWant
	nodes  []pg.NodeID
	edges  []pg.EdgeID
}

type fusedTaskKind int

const (
	taskNodePass fusedTaskKind = iota
	taskEdgePass
	taskDS4
	taskDS4Dirty
	taskDS7
	taskDS7Range

	numTaskKinds // count, for per-kind feedback accumulators
)

// span is the chunk's element span, for the scheduler's chunk-size
// histogram; whole-pass markers (DS4 all, whole DS7) count as 1.
func (t *fusedChunk) span() int {
	if n := t.hi - t.lo; n > 0 {
		return n
	}
	return 1
}

// ds7Range emits the DS7 violations of the binding's conflict groups in
// [lo, hi) — the chunkable form of the bound unrestricted DS7 sweep.
// The groups are exactly the ≥2-node key buckets, in deterministic
// order; callers must have built the key index (fused does, before
// planning).
func (r *runner) ds7Range(emit emitFunc, lo, hi int) {
	b := r.bind
	for i := lo; i < hi; i++ {
		grp := &b.ds7Groups[i]
		if r.drop() {
			continue
		}
		emit(Violation{
			Rule: DS7, Node: grp.nodes[0], Edge: -1,
			TypeName: grp.typeName,
			Message: fmt.Sprintf("%d nodes (%s, %s, …) of type %s agree on key {%s}, violating @key",
				len(grp.nodes), nodeRef(grp.nodes[0]), nodeRef(grp.nodes[1]), grp.typeName, strings.Join(grp.keyFields, ", ")),
		})
	}
}

// run executes the chunk, emitting into emit. Dense ranges (nil
// node/edge lists) take the word-walk kernels; list chunks — the shape
// incremental revalidation plans — keep the per-element passes.
func (t fusedChunk) run(r *runner, sc *fusedScratch, emit emitFunc) {
	switch t.kind {
	case taskNodePass:
		if t.nodes == nil {
			r.fusedNodePassDense(t.w, emit, t.lo, t.hi, sc)
		} else {
			r.fusedNodePass(t.w, emit, t.nodes, t.lo, t.hi, sc)
		}
	case taskEdgePass:
		if t.edges == nil {
			r.fusedEdgePassDense(t.w, emit, t.lo, t.hi)
		} else {
			r.fusedEdgePass(t.w, emit, t.edges, t.lo, t.hi)
		}
	case taskDS4:
		r.ds4Fused(emit, t.decl, t.lo, t.hi)
	case taskDS4Dirty:
		r.ds4DirtyPass(emit, t.nodes, t.lo, t.hi)
	case taskDS7Range:
		r.ds7Range(emit, t.lo, t.hi)
	default:
		r.ds7(emit, 0, 1)
	}
}

// rules returns the rules the chunk evaluates (already intersected with
// the requested set), for timing attribution.
func (t fusedChunk) rules() []Rule {
	switch t.kind {
	case taskNodePass:
		return t.w.active(nodePassRules)
	case taskEdgePass:
		return t.w.active(edgePassRules)
	case taskDS4, taskDS4Dirty:
		return []Rule{DS4}
	default: // taskDS7, taskDS7Range
		return []Rule{DS7}
	}
}

// Chunk sizing. Without feedback, aim for chunksPerWorker chunks per
// worker so the cursor can rebalance skew, but never smaller than
// minChunkSpan elements so tiny graphs don't drown in scheduling
// overhead (and tests on small graphs still exercise multi-chunk
// merges). With feedback — observed per-element pass costs on the
// compiled Program — size chunks toward targetChunkNs of work each, so
// dispatch overhead is a fixed small fraction of a chunk regardless of
// graph size, halving the span when previous runs measured high chunk
// skew (one chunk much slower than average means finer grains steal
// better).
const (
	minChunkSpan       = 16
	chunksPerWorker    = 16
	targetChunkNs      = 1e6 // ~1ms of work per chunk
	skewHalveThreshold = 2.0 // max/avg chunk time that triggers halving
	feedbackMinElems   = 1024
)

// defaultSpan is the feedback-free chunk span for a pass of the given
// element bound.
func defaultSpan(bound, workers int) int {
	span := (bound + workers*chunksPerWorker - 1) / (workers * chunksPerWorker)
	if span < minChunkSpan {
		span = minChunkSpan
	}
	return span
}

// adaptiveSpan sizes a pass's chunks from the program's scheduler
// feedback, falling back to defaultSpan when the task kind has no
// observations yet. The span is clamped to keep at least two chunks
// per worker whenever the pass is large enough to split that far.
func adaptiveSpan(kind fusedTaskKind, bound, workers int, fb *schedFeedback) int {
	if fb == nil || fb.nsPerElem[kind] <= 0 {
		return defaultSpan(bound, workers)
	}
	span := int(targetChunkNs / fb.nsPerElem[kind])
	if fb.skew[kind] > skewHalveThreshold {
		span /= 2
	}
	if span < minChunkSpan {
		span = minChunkSpan
	}
	if maxSpan := bound / (2 * workers); maxSpan >= minChunkSpan && span > maxSpan {
		span = maxSpan
	}
	return span
}

// appendRangeChunks splits [0, bound) into chunks of the given span and
// appends them as chunks of the kind.
func appendRangeChunks(chunks []fusedChunk, kind fusedTaskKind, decl, bound, span int) []fusedChunk {
	if bound <= 0 {
		return chunks
	}
	if span < 1 {
		span = 1
	}
	for lo := 0; lo < bound; lo += span {
		hi := lo + span
		if hi > bound {
			hi = bound
		}
		chunks = append(chunks, fusedChunk{kind: kind, decl: decl, lo: lo, hi: hi})
	}
	return chunks
}

// planFusedChunks plans the work units for the requested rules. Without
// ElementSharding each pass is one whole chunk (coarse tasks, as the
// non-sharded parallel engine always ran); with it the node and edge
// passes and every DS4 declaration split into many range chunks for the
// stealing cursor. DS7 buckets globally and stays whole either way.
func (r *runner) planFusedChunks(w fusedWant, sharded bool, workers int, chunks []fusedChunk) []fusedChunk {
	b := r.bind
	nodePass := len(w.active(nodePassRules)) > 0
	edgePass := len(w.active(edgePassRules)) > 0
	if !sharded {
		if nodePass {
			chunks = append(chunks, fusedChunk{kind: taskNodePass, decl: -1, lo: 0, hi: b.snap.NodeBound()})
		}
		if edgePass {
			chunks = append(chunks, fusedChunk{kind: taskEdgePass, decl: -1, lo: 0, hi: b.snap.EdgeBound()})
		}
		if w.ds4 {
			chunks = append(chunks, fusedChunk{kind: taskDS4, decl: -1})
		}
		if w.ds7 {
			chunks = append(chunks, fusedChunk{kind: taskDS7, decl: -1})
		}
		for i := range chunks {
			chunks[i].w = w
		}
		return chunks
	}
	fb := b.p.sched.Load()
	if nodePass {
		bound := b.snap.NodeBound()
		chunks = appendRangeChunks(chunks, taskNodePass, -1, bound, adaptiveSpan(taskNodePass, bound, workers, fb))
	}
	if edgePass {
		bound := b.snap.EdgeBound()
		chunks = appendRangeChunks(chunks, taskEdgePass, -1, bound, adaptiveSpan(taskEdgePass, bound, workers, fb))
	}
	if w.ds4 {
		for d := range b.reqTargets {
			bound := len(b.reqTargets[d].targets)
			chunks = appendRangeChunks(chunks, taskDS4, d, bound, adaptiveSpan(taskDS4, bound, workers, fb))
		}
	}
	if w.ds7 {
		// The key index was built by fused() before planning; the DS7 pass
		// chunks bucket-group ranges, so a key-heavy graph no longer
		// serializes the run behind one whole-pass task.
		bound := len(b.ds7Groups)
		chunks = appendRangeChunks(chunks, taskDS7Range, -1, bound, adaptiveSpan(taskDS7Range, bound, workers, fb))
	}
	for i := range chunks {
		chunks[i].w = w
	}
	return chunks
}

// attribute splits a pass's elapsed time across the rules it evaluated:
// each rule gets an equal share and the first rule absorbs the division
// remainder, so the per-rule durations sum exactly to the measured pass
// time. This is an attribution, not a per-rule measurement — the fused
// inner loop deliberately avoids per-rule clock reads.
func attribute(timings map[Rule]time.Duration, rules []Rule, elapsed time.Duration) {
	if len(rules) == 0 {
		return
	}
	share := elapsed / time.Duration(len(rules))
	rem := elapsed - share*time.Duration(len(rules))
	for i, r := range rules {
		timings[r] += share
		if i == 0 {
			timings[r] += rem
		}
	}
}

// fused runs the fused engine against the compiled program, sequentially
// or — when Options.Workers > 1 — on a work-stealing worker pool:
// workers claim range chunks off an atomic cursor and merge pooled
// per-chunk violation buffers into the collector (no mutex in the hot
// path). It returns the per-rule timings when Options.CollectTimings is
// set.
func (r *runner) fused(p *Program, rules []Rule, c *collector) (map[Rule]time.Duration, *sched.Stats) {
	r.bind = p.bindTo(r.g)
	w := wantRules(rules)
	if w.ds4 {
		// The full-sweep DS4 tasks range over the bound target
		// enumerations; materialize them before planning reads their
		// lengths. (Dirty-list runs plan their own chunks and skip this.)
		r.bind.ensureNodes()
	}
	if len(w.active(nodePassRules)) > 0 || len(w.active(edgePassRules)) > 0 {
		// The dense passes walk the live bitsets; build them outside the
		// timed chunks so the first chunk isn't charged for the build.
		r.bind.kernels()
	}
	workers := r.opts.Workers
	if workers <= 1 {
		workers = 1
	}
	sharded := r.opts.Workers > 1 && r.opts.ElementSharding
	if w.ds7 && sharded {
		// Materialize the key index so planning can range over the
		// conflict groups (the same work the whole-pass DS7 task would
		// have done serially inside one chunk).
		r.bind.keyIndex(r.s)
	}
	cb := p.getChunkBuf()
	cb.chunks = r.planFusedChunks(w, sharded, workers, cb.chunks[:0])
	timings, st := r.runChunks(cb.chunks, rules, c)
	p.putChunkBuf(cb)
	return timings, st
}

// chunkBuf is a pooled chunk-plan buffer — behind a pointer so the pool
// round-trip never boxes a slice header.
type chunkBuf struct{ chunks []fusedChunk }

func (p *Program) getChunkBuf() *chunkBuf {
	cb, _ := p.chunkPool.Get().(*chunkBuf)
	if cb == nil {
		cb = &chunkBuf{}
	}
	return cb
}

func (p *Program) putChunkBuf(cb *chunkBuf) { p.chunkPool.Put(cb) }

// runChunks executes planned fused chunks — sequentially when the
// runner has one worker, else on the work-stealing scheduler — and
// returns per-rule timings when requested plus the run's scheduler
// telemetry. The runner's context is honored at chunk boundaries: a
// cancelled context stops before the next chunk claim, never mid-chunk,
// so every merged buffer holds whole-chunk results and the
// claimed-chunk-completes merge invariant survives cancellation.
//
// Both paths record per-kind element costs (and, in parallel, the
// measured efficiency and chunk skew) into the program's scheduler
// feedback, which adaptiveSpan and autotuneWorkers consult on later
// runs over the same program.
func (r *runner) runChunks(chunks []fusedChunk, rules []Rule, c *collector) (map[Rule]time.Duration, *sched.Stats) {
	var timings map[Rule]time.Duration
	if r.opts.CollectTimings {
		timings = make(map[Rule]time.Duration, len(rules))
		for _, rule := range rules {
			timings[rule] = 0 // every requested rule gets an entry
		}
	}
	p := r.bind.p

	if r.opts.Workers <= 1 {
		// Sequential: emit straight into the collector and keep scanning
		// passes after the cap fills until an emit is rejected — the same
		// exact-Truncated contract as the sequential rule-by-rule engine,
		// at pass rather than rule granularity.
		sc := p.getScratch(r.bind.symCount)
		var st *sched.Stats
		if r.opts.SchedStats {
			st = &sched.Stats{Workers: 1, Chunks: len(chunks), PerWorker: make([]sched.WorkerStats, 1)}
			for i := range chunks {
				st.SpanHist[sched.SpanBucket(chunks[i].span())]++
			}
		}
		var obs schedFeedback
		var elems [numTaskKinds]int64
		start := time.Now()
		for i := range chunks {
			t := &chunks[i]
			if c.truncated() || r.cancelled() {
				break
			}
			t0 := time.Now()
			t.run(r, sc, c.emit)
			d := time.Since(t0)
			if timings != nil {
				attribute(timings, t.rules(), d)
			}
			if t.nodes == nil && t.edges == nil && t.hi > t.lo {
				obs.nsPerElem[t.kind] += float64(d) // summed ns; divided below
				elems[t.kind] += int64(t.hi - t.lo)
			}
			if st != nil {
				pw := &st.PerWorker[0]
				pw.Chunks++
				pw.Busy += d
				if d > pw.MaxChunk {
					pw.MaxChunk = d
				}
			}
		}
		if st != nil {
			st.Wall = time.Since(start)
			st.Busy = st.PerWorker[0].Busy
			st.MaxChunk = st.PerWorker[0].MaxChunk
		}
		note := false
		for k := range elems {
			if elems[k] >= feedbackMinElems {
				obs.nsPerElem[k] /= float64(elems[k])
				note = true
			} else {
				obs.nsPerElem[k] = 0
			}
		}
		if note {
			p.noteSched(&obs)
		}
		p.putScratch(sc)
		return timings, st
	}

	workers := r.opts.Workers
	pr := p.getParRun(workers, r.bind.symCount)
	body := func(worker, idx int) {
		pw := &pr.workers[worker]
		// Cancellation and cap checks happen per claim: chunks already
		// running finish and merge; unstarted ones are abandoned (or, for
		// the cap, skipped — a started chunk always merges, so overflow
		// among completed chunks is never lost; see collector.merge).
		if r.cancelled() || c.full() {
			return
		}
		t := &chunks[idx]
		t0 := time.Now()
		t.run(r, pw.sc, pw.emit)
		d := time.Since(t0)
		c.merge(pw.buf)
		pw.buf = pw.buf[:0]
		if timings != nil {
			if pw.timings == nil {
				pw.timings = make(map[Rule]time.Duration)
			}
			attribute(pw.timings, t.rules(), d)
		}
		if t.nodes == nil && t.edges == nil && t.hi > t.lo {
			k := t.kind
			pw.kindNs[k] += int64(d)
			pw.kindElems[k] += int64(t.hi - t.lo)
			pw.kindChunks[k]++
			if int64(d) > pw.kindMax[k] {
				pw.kindMax[k] = int64(d)
			}
		}
	}
	// Stats are always collected in parallel runs — the efficiency
	// feedback that drives worker autotuning needs them even when the
	// caller didn't ask to see them. When nobody will see them, the
	// Stats object itself is recycled from the pooled run state; when
	// the caller gets them (SchedStats), it must own a fresh one.
	var reuse *sched.Stats
	if !r.opts.SchedStats {
		reuse = pr.st
	}
	st := sched.Run(workers, len(chunks), body, sched.Options{
		Collect: true,
		Span:    func(i int) int { return chunks[i].span() },
		Reuse:   reuse,
	})
	if !r.opts.SchedStats {
		pr.st = st
	}

	// Post-run, single-threaded: merge per-worker timings (no mutex ever
	// touched the hot path) and fold the observations into the program's
	// feedback.
	obs := &schedFeedback{efficiency: st.Efficiency()}
	var ns, el, cnt, mx [numTaskKinds]int64
	for i := range pr.workers {
		pw := &pr.workers[i]
		if pw.timings != nil {
			for rule, d := range pw.timings {
				timings[rule] += d
			}
			pw.timings = nil
		}
		for k := 0; k < int(numTaskKinds); k++ {
			ns[k] += pw.kindNs[k]
			el[k] += pw.kindElems[k]
			cnt[k] += pw.kindChunks[k]
			if pw.kindMax[k] > mx[k] {
				mx[k] = pw.kindMax[k]
			}
		}
		pw.kindNs = [numTaskKinds]int64{}
		pw.kindElems = [numTaskKinds]int64{}
		pw.kindChunks = [numTaskKinds]int64{}
		pw.kindMax = [numTaskKinds]int64{}
	}
	for k := range ns {
		if el[k] >= feedbackMinElems {
			obs.nsPerElem[k] = float64(ns[k]) / float64(el[k])
			if cnt[k] > 0 {
				if avg := float64(ns[k]) / float64(cnt[k]); avg > 0 {
					obs.skew[k] = float64(mx[k]) / avg
				}
			}
		}
	}
	p.noteSched(obs)
	p.putParRun(pr)
	return timings, st
}

// parRun is the pooled per-run state of the parallel engine: one
// parWorker per worker, each holding reusable scratch, a violation
// buffer, and an emit closure bound to that buffer — so a warm parallel
// run allocates no per-chunk (or even per-worker) buffers and closures,
// the flat-allocation contract TestParallelAllocBudget pins.
type parRun struct {
	workers []parWorker

	// st is the recycled scheduler-telemetry object for runs where the
	// caller did not ask to see the stats (the common case).
	st *sched.Stats
}

type parWorker struct {
	sc      *fusedScratch
	buf     []Violation
	emit    emitFunc
	timings map[Rule]time.Duration

	// Per-task-kind accumulators for the scheduler feedback, reset
	// after every run's post-merge.
	kindNs, kindElems, kindChunks, kindMax [numTaskKinds]int64
}

// getScratch hands out a pooled sequential-pass scratch.
func (p *Program) getScratch(symCount int) *fusedScratch {
	sc, _ := p.scratchPool.Get().(*fusedScratch)
	if sc == nil {
		return newFusedScratch(symCount)
	}
	sc.resize(symCount)
	return sc
}

func (p *Program) putScratch(sc *fusedScratch) { p.scratchPool.Put(sc) }

// getParRun hands out the pooled parallel run state, sized for the
// worker count.
func (p *Program) getParRun(workers, symCount int) *parRun {
	pr, _ := p.runPool.Get().(*parRun)
	if pr == nil {
		pr = &parRun{}
	}
	if cap(pr.workers) < workers {
		// The emit closures capture element addresses, so growing must
		// rebuild the slice wholesale rather than append into it.
		pr.workers = make([]parWorker, workers)
	}
	pr.workers = pr.workers[:workers]
	for i := range pr.workers {
		pw := &pr.workers[i]
		if pw.sc == nil {
			pw.sc = newFusedScratch(symCount)
		} else {
			pw.sc.resize(symCount)
		}
		if pw.emit == nil {
			pw.emit = func(v Violation) { pw.buf = append(pw.buf, v) }
		}
	}
	return pr
}

func (p *Program) putParRun(pr *parRun) { p.runPool.Put(pr) }
