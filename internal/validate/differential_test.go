package validate_test

// The differential harness proves the engine-equivalence claim the
// fused engine rests on: for a matrix of generated schemas, conformant
// graphs, and per-rule injected faults, every engine configuration —
// rule-by-rule and fused, sequential and parallel, sharded and not, and
// the naive pair-scan ablation — must emit the byte-identical
// canonically-sorted violation set under all three satisfaction modes.

import (
	"fmt"
	"strings"
	"testing"

	"pgschema/internal/gen"
	"pgschema/internal/parser"
	"pgschema/internal/pg"
	"pgschema/internal/schema"
	"pgschema/internal/validate"
)

// diffSchema is a directive-complete schema: every one of the fifteen
// rules is injectable against it (gen.Inject never errors), which the
// injector coverage test in internal/gen pins separately.
const diffSchema = `
type Author @key(fields: ["name"]) {
	name: String! @required
	age: Int
	favoriteBook: Book
	relatedAuthor: [Author] @distinct @noLoops
}
type Book {
	title: String! @required
	pages: Int
	author(since: Int!, role: String): [Author] @required @distinct
}
type BookSeries {
	contains: [Book] @required @uniqueForTarget
}
type Publisher {
	published: [Book] @uniqueForTarget @requiredForTarget
}`

// engineConfigs is the configuration matrix every run is checked
// across. The first entry is the baseline the others must match.
// Configs with compiled set receive a Program compiled once per
// assertEngineEquivalence call and shared across modes, exercising the
// cross-run binding cache as well as the compiled passes.
var engineConfigs = []struct {
	name     string
	compiled bool
	set      func(*validate.Options)
}{
	{"seq/rule-by-rule", false, func(o *validate.Options) { o.Engine = validate.EngineRuleByRule }},
	{"seq/fused", false, func(o *validate.Options) { o.Engine = validate.EngineFused }},
	{"par4/rule-by-rule", false, func(o *validate.Options) { o.Engine = validate.EngineRuleByRule; o.Workers = 4 }},
	{"par4/fused", false, func(o *validate.Options) { o.Engine = validate.EngineFused; o.Workers = 4 }},
	{"par4+sharding/fused", false, func(o *validate.Options) {
		o.Engine = validate.EngineFused
		o.Workers = 4
		o.ElementSharding = true
	}},
	{"seq/naive-pair-scan", false, func(o *validate.Options) { o.Engine = validate.EngineRuleByRule; o.NaivePairScan = true }},
	{"seq/fused+program", true, func(o *validate.Options) { o.Engine = validate.EngineFused }},
	{"par4+sharding/fused+program", true, func(o *validate.Options) {
		o.Engine = validate.EngineFused
		o.Workers = 4
		o.ElementSharding = true
	}},
}

var diffModes = []struct {
	name string
	mode validate.Mode
}{
	{"strong", validate.Strong},
	{"weak", validate.Weak},
	{"directives", validate.Directives},
}

// renderViolations serializes a result canonically: Validate already
// sorts the violations, so a field-for-field dump is a canonical form
// and equality of the rendered strings is byte-identity of the sets.
func renderViolations(res *validate.Result) string {
	var b strings.Builder
	for _, v := range res.Violations {
		fmt.Fprintf(&b, "%s|%d|%d|%s|%s|%s|%s\n",
			v.Rule, v.Node, v.Edge, v.TypeName, v.Field, v.Property, v.Message)
	}
	return b.String()
}

// assertEngineEquivalence validates the graph under every engine
// configuration and mode, and fails on the first divergence from the
// sequential rule-by-rule baseline.
func assertEngineEquivalence(t *testing.T, s *schema.Schema, g *pg.Graph, label string) {
	t.Helper()
	prog := validate.Compile(s)
	for _, m := range diffModes {
		var baseline string
		for i, cfg := range engineConfigs {
			opts := validate.Options{Mode: m.mode}
			cfg.set(&opts)
			if cfg.compiled {
				opts.Program = prog
			}
			got := renderViolations(validate.Validate(s, g, opts))
			if i == 0 {
				baseline = got
				continue
			}
			if got != baseline {
				t.Errorf("%s: mode %s: engine %s diverges from %s:\n--- baseline ---\n%s--- got ---\n%s",
					label, m.name, cfg.name, engineConfigs[0].name, baseline, got)
			}
		}
	}
}

func buildDiff(t *testing.T, src string) *schema.Schema {
	t.Helper()
	doc, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	s, err := schema.Build(doc, schema.Options{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return s
}

// TestDifferentialInjectedFaults runs the core matrix: 20 seeds × the
// 15 rules × the engine configurations × the three modes, over the
// directive-complete schema. For every (seed, rule) pair a conformant
// graph is generated, the rule's fault is injected, and all engines
// must agree; the clean graph must also validate clean everywhere.
func TestDifferentialInjectedFaults(t *testing.T) {
	s := buildDiff(t, diffSchema)
	const seeds = 20
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			base, err := gen.Conformant(s, gen.Config{Seed: seed, NodesPerType: 6})
			if err != nil {
				t.Fatalf("conformant: %v", err)
			}
			assertEngineEquivalence(t, s, base, "clean graph")
			for _, m := range diffModes {
				opts := validate.Options{Mode: m.mode}
				if res := validate.Validate(s, base, opts); !res.OK() {
					t.Fatalf("clean graph invalid under %s: %v", m.name, res.Violations)
				}
			}
			for _, rule := range validate.AllRules {
				g := base.Clone()
				desc, err := gen.Inject(s, g, rule, seed)
				if err != nil {
					t.Fatalf("inject %s: %v", rule, err)
				}
				label := fmt.Sprintf("inject %s (%s)", rule, desc)
				// The targeted rule must actually fire in strong mode.
				strong := validate.Validate(s, g, validate.Options{})
				if len(strong.ByRule()[rule]) == 0 {
					t.Errorf("%s: targeted rule not reported; got %v", label, strong.Violations)
				}
				assertEngineEquivalence(t, s, g, label)
			}
		})
	}
}

// TestDifferentialRandomSchemas widens the matrix with generated
// schemas: random type graphs, unions, wrapped types, and random
// directive placement. Rules the particular schema offers no
// opportunity to violate are skipped (gen.Inject reports them); every
// injectable fault must keep the engines in agreement.
func TestDifferentialRandomSchemas(t *testing.T) {
	injected := 0
	for seed := int64(1); seed <= 12; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("schema=%d", seed), func(t *testing.T) {
			s, src, err := gen.RandomSchema(gen.SchemaConfig{Seed: seed, Unions: seed%2 == 0})
			if err != nil {
				t.Fatalf("random schema: %v", err)
			}
			base, err := gen.Conformant(s, gen.Config{Seed: seed, NodesPerType: 8})
			if err != nil {
				t.Fatalf("conformant for schema:\n%s\nerror: %v", src, err)
			}
			assertEngineEquivalence(t, s, base, "clean graph")
			for _, rule := range validate.AllRules {
				g := base.Clone()
				desc, err := gen.Inject(s, g, rule, seed)
				if err != nil {
					continue // schema offers no way to violate this rule
				}
				injected++
				assertEngineEquivalence(t, s, g, fmt.Sprintf("inject %s (%s)", rule, desc))
			}
		})
	}
	if injected == 0 {
		t.Error("random-schema sweep injected no faults at all")
	}
}
