package validate

import (
	"context"
	"math/bits"

	"pgschema/internal/pg"
	"pgschema/internal/schema"
)

// Delta lists the graph elements touched by a mutation batch: nodes that
// were added, relabeled, or had properties changed, and edges that were
// added, removed, or had properties changed. Removed edges may be listed
// (their endpoints are still resolvable); removed nodes may be listed
// too (they are skipped as tombstones, and their incident-edge removals
// pull the former neighbours into the region).
type Delta struct {
	Nodes []pg.NodeID
	Edges []pg.EdgeID
	// Labels lists additional node types whose @key buckets must be
	// recomputed: the former labels of relabeled or removed nodes (the
	// current label is derived from Nodes automatically). Without this,
	// a relabeled node could leave a stale key-conflict report behind.
	Labels []string
}

// DeltaFor translates the mutation summary of a pg.Graph.Apply into the
// Delta Revalidate consumes. The correspondence is direct — Touched
// already lists every element whose rule inputs changed plus the former
// labels DS7 needs.
func DeltaFor(t pg.Touched) Delta {
	return Delta{Nodes: t.Nodes, Edges: t.Edges, Labels: t.Labels}
}

// idBits is a dense bitset over element IDs. Region construction and
// membership tests sit on the small-delta hot path (they rival the rule
// work itself for ≤1% deltas), so the sets are bit vectors sized to the
// graph bound rather than hash maps: set/has are a shift and a mask,
// and flattening to a sorted scan list is a word-wise sweep with no
// sort call.
type idBits []uint64

func newIDBits(bound int) idBits { return make(idBits, (bound+63)/64) }

// setBit marks id, growing the vector when id lies beyond the graph
// bound (undone additions — kept only so splicing can match them).
func (b *idBits) setBit(id int) {
	w := id >> 6
	if w >= len(*b) {
		grown := make(idBits, w+1)
		copy(grown, *b)
		*b = grown
	}
	(*b)[w] |= 1 << (uint(id) & 63)
}

func (b idBits) has(id int) bool {
	w := id >> 6
	return w < len(b) && b[w]&(1<<(uint(id)&63)) != 0
}

func (b idBits) count() int {
	n := 0
	for _, w := range b {
		n += bits.OnesCount64(w)
	}
	return n
}

// nodeMap and edgeMap expand a bit vector into the map form the
// rule-by-rule runner's restriction filters take. Out-of-bound bits are
// kept — the runner intersects with the live element lists anyway.
func (b idBits) nodeMap() map[pg.NodeID]bool {
	m := make(map[pg.NodeID]bool, b.count())
	for wi, w := range b {
		for w != 0 {
			m[pg.NodeID(wi<<6+bits.TrailingZeros64(w))] = true
			w &= w - 1
		}
	}
	return m
}

func (b idBits) edgeMap() map[pg.EdgeID]bool {
	m := make(map[pg.EdgeID]bool, b.count())
	for wi, w := range b {
		for w != 0 {
			m[pg.EdgeID(wi<<6+bits.TrailingZeros64(w))] = true
			w &= w - 1
		}
	}
	return m
}

// deltaRegion is the blast radius of a delta, split by the element
// space each rule group quantifies over.
type deltaRegion struct {
	nodeSet   idBits          // WS1, SS1, SS2, DS5: the delta nodes
	edgeSet   idBits          // WS2, WS3, SS3, SS4: delta + incident edges
	sourceSet idBits          // WS4, DS1, DS2, DS6: delta nodes ∪ sources of region edges
	targetSet idBits          // DS3, DS4: delta nodes ∪ targets of region edges
	affected  map[string]bool // DS7: types ⊒-related to a delta label
}

// regionOf computes the influence region of a delta on the current
// graph state:
//
//	WS1, SS1, SS2, DS5      the delta nodes themselves
//	WS2, WS3, SS3, SS4      the delta edges and all edges incident to a
//	                        delta node (λ(v1)/λ(v2) feed edge rules)
//	WS4, DS1, DS2, DS6      delta nodes and sources of region edges
//	DS3, DS4                delta nodes and targets of region edges
//	DS7                     every node type ⊒-related to a delta label
//	                        (key buckets are global per type)
func regionOf(g *pg.Graph, delta Delta) deltaRegion {
	// A delta produced by an Undo can reference elements that were
	// appended by the undone Apply and popped again — their IDs sit
	// beyond the current bounds. They stay in the sets (setBit grows
	// past the bound, so splicing drops any prev violations that
	// mention them) but cannot be traversed or scanned.
	nb, eb := g.NodeBound(), g.EdgeBound()
	reg := deltaRegion{
		nodeSet:   newIDBits(nb),
		edgeSet:   newIDBits(eb),
		sourceSet: newIDBits(nb),
		targetSet: newIDBits(nb),
		affected:  make(map[string]bool, 4),
	}
	for _, n := range delta.Nodes {
		reg.nodeSet.setBit(int(n))
		reg.sourceSet.setBit(int(n))
		reg.targetSet.setBit(int(n))
		if int(n) >= nb {
			continue
		}
		// Node types whose key buckets may have shifted. Removed nodes
		// still expose their former label, so they contribute too.
		reg.affected[g.NodeLabel(n)] = true
		// A node's label and existence feed into the edge-scoped rules
		// of every incident edge (WS2/WS3/SS3/SS4 key off λ(v1) and
		// λ(v2)), so incident edges — including freshly removed ones —
		// join the region.
		for _, e := range g.AllOutEdges(n) {
			reg.edgeSet.setBit(int(e))
		}
		for _, e := range g.AllInEdges(n) {
			reg.edgeSet.setBit(int(e))
		}
	}
	for _, e := range delta.Edges {
		reg.edgeSet.setBit(int(e))
	}
	for _, e := range sortedEdgeList(reg.edgeSet, eb) {
		src, dst := g.Endpoints(e)
		reg.sourceSet.setBit(int(src))
		reg.targetSet.setBit(int(dst))
	}
	for _, l := range delta.Labels {
		reg.affected[l] = true
	}
	return reg
}

// elements is the region's total dirty-element count — the work size
// parallelism decisions key on.
func (reg deltaRegion) elements() int {
	return reg.sourceSet.count() + reg.targetSet.count() + reg.edgeSet.count()
}

// sortedNodeList flattens a dirty set into a scannable list, dropping
// IDs beyond the graph's current bound (undone additions — present in
// the set only so splicing can match them). The word-order sweep
// yields ascending IDs for free.
func sortedNodeList(set idBits, bound int) []pg.NodeID {
	out := make([]pg.NodeID, 0, set.count())
	for wi, w := range set {
		for w != 0 {
			id := wi<<6 + bits.TrailingZeros64(w)
			if id >= bound {
				return out
			}
			out = append(out, pg.NodeID(id))
			w &= w - 1
		}
	}
	return out
}

func sortedEdgeList(set idBits, bound int) []pg.EdgeID {
	out := make([]pg.EdgeID, 0, set.count())
	for wi, w := range set {
		for w != 0 {
			id := wi<<6 + bits.TrailingZeros64(w)
			if id >= bound {
				return out
			}
			out = append(out, pg.EdgeID(id))
			w &= w - 1
		}
	}
	return out
}

// Revalidate produces the full validation result after a mutation
// without re-checking the entire graph: it re-runs each rule only over
// the region the delta can influence (see regionOf) and splices the
// fresh findings into prev.
//
// prev must be a complete result (not Truncated, not Incomplete) for
// the same schema, mode, and rule set over the graph state before the
// mutation; the returned result then equals what a full ValidateContext
// with the same options would produce on the current state — the
// equivalence the differential harness verifies. When prev is nil,
// truncated, or incomplete there is nothing sound to splice into, and
// Revalidate falls back to a full run.
//
// The engine resolution mirrors Validate: EngineAuto and EngineFused
// run the region through delta-scoped fused passes over the epoch's
// snapshot (chunked onto the work-stealing pool when Options.Workers
// asks for it); EngineRuleByRule keeps the definitional restricted
// sweeps. MaxViolations is ignored — a spliced result is only coherent
// when both sides are complete. Cancellation is observed at chunk
// boundaries; a cancelled run returns with Incomplete set, and such a
// result must not seed a later Revalidate.
func Revalidate(ctx context.Context, s *schema.Schema, g *pg.Graph, prev *Result, delta Delta, opts Options) *Result {
	if prev == nil || prev.Truncated || prev.Incomplete {
		return ValidateContext(ctx, s, g, opts)
	}
	rules := opts.rules()
	reg := regionOf(g, delta)
	engine := opts.resolveEngine()
	// Worker resolution keys on the dirty-element count, not the graph
	// size: a small delta on a huge graph is small work.
	origWorkers := opts.Workers
	opts.Workers = opts.EffectiveWorkers(reg.elements())

	finish := func(res *Result) *Result {
		res.Engine = engine
		res.Workers = opts.Workers
		res.Incomplete = ctx.Err() != nil
		return res
	}

	c := newCollector(0)
	r := &runner{s: s, g: g, opts: opts, ctx: ctx}
	if engine == EngineFused {
		p := opts.Program
		if p == nil || p.s != s {
			var err error
			p, err = CompileContext(ctx, s)
			if err != nil {
				return finish(&Result{})
			}
		}
		// Autotuned worker counts fall back toward sequential when the
		// program's measured parallel efficiency says parallelism is not
		// paying, as in ValidateContext.
		if origWorkers == 0 && opts.Workers > 1 {
			opts.Workers = p.autotuneWorkers(opts.Workers)
			r.opts.Workers = opts.Workers
		}
		r.coll = c
		r.bind = p.bindTo(g)
		r.onlyTypes = reg.affected // consulted by the DS7 chunk alone
		w := wantRules(rules)
		timings, st := r.runChunks(r.planDirtyChunks(w, reg), rules, c)
		fresh := c.result()
		out := splice(r, prev, fresh, reg)
		out.RuleTime = timings
		if opts.SchedStats {
			out.Sched = st
		}
		return finish(out)
	}

	// EngineRuleByRule: the definitional restricted sweeps, one rule at
	// a time over its region, checked for cancellation between rules.
	// The runner's restriction filters are maps, so the bit vectors are
	// expanded once per region here — acceptable on the definitional
	// path, which is not the performance surface.
	run := func(rule Rule, only map[pg.NodeID]bool, onlyEdges map[pg.EdgeID]bool) {
		if r.cancelled() {
			return
		}
		r.onlyNodes, r.onlyEdges, r.onlyTypes = only, onlyEdges, nil
		r.runRule(rule, c.emit, 0, 1)
	}
	want := make(map[Rule]bool, len(rules))
	for _, rule := range rules {
		want[rule] = true
	}
	nodeMap, edgeMap := reg.nodeSet.nodeMap(), reg.edgeSet.edgeMap()
	sourceMap, targetMap := reg.sourceSet.nodeMap(), reg.targetSet.nodeMap()
	for _, rule := range []Rule{WS1, SS1, SS2, DS5} {
		if want[rule] {
			run(rule, nodeMap, nil)
		}
	}
	for _, rule := range []Rule{WS2, WS3, SS3, SS4} {
		if want[rule] {
			run(rule, nil, edgeMap)
		}
	}
	for _, rule := range []Rule{WS4, DS1, DS2, DS6} {
		if want[rule] {
			run(rule, sourceMap, nil)
		}
	}
	for _, rule := range []Rule{DS3, DS4} {
		if want[rule] {
			run(rule, targetMap, nil)
		}
	}
	if want[DS7] && !r.cancelled() {
		// DS7 needs the full key buckets of the affected types.
		r.onlyNodes, r.onlyEdges, r.onlyTypes = nil, nil, reg.affected
		r.runRule(DS7, c.emit, 0, 1)
	}
	return finish(splice(r, prev, c.result(), reg))
}

// RevalidateWithOptions is the pre-context signature of Revalidate.
//
// Deprecated: use Revalidate, which takes the run context first.
func RevalidateWithOptions(s *schema.Schema, g *pg.Graph, prev *Result, delta Delta, opts Options) *Result {
	return Revalidate(context.Background(), s, g, prev, delta, opts)
}

// planDirtyChunks plans the delta-scoped fused work: the region's
// sorted dirty lists chunked for the work-stealing cursor, each chunk
// carrying only the rules whose influence region it covers. DS4 runs as
// a dirty pass testing candidates against each declaration's
// target-label syms (no enumeration build), and DS7 stays a single
// restricted task over the runner's onlyTypes.
func (r *runner) planDirtyChunks(w fusedWant, reg deltaRegion) []fusedChunk {
	workers := r.opts.Workers
	if workers < 1 {
		workers = 1
	}
	var chunks []fusedChunk
	add := func(kind fusedTaskKind, cw fusedWant, nodes []pg.NodeID, edges []pg.EdgeID, bound int) {
		base := len(chunks)
		chunks = appendRangeChunks(chunks, kind, -1, bound, defaultSpan(bound, workers))
		for i := base; i < len(chunks); i++ {
			chunks[i].w, chunks[i].nodes, chunks[i].edges = cw, nodes, edges
		}
	}
	if cw := (fusedWant{ws1: w.ws1, ss1: w.ss1, ss2: w.ss2, ds5: w.ds5}); cw != (fusedWant{}) {
		list := sortedNodeList(reg.nodeSet, r.g.NodeBound())
		add(taskNodePass, cw, list, nil, len(list))
	}
	if cw := (fusedWant{ws4: w.ws4, ds1: w.ds1, ds2: w.ds2, ds6: w.ds6}); cw != (fusedWant{}) {
		list := sortedNodeList(reg.sourceSet, r.g.NodeBound())
		add(taskNodePass, cw, list, nil, len(list))
	}
	if w.ds3 || w.ds4 {
		list := sortedNodeList(reg.targetSet, r.g.NodeBound())
		if w.ds3 {
			add(taskNodePass, fusedWant{ds3: true}, list, nil, len(list))
		}
		if w.ds4 {
			add(taskDS4Dirty, fusedWant{ds4: true}, list, nil, len(list))
		}
	}
	if cw := (fusedWant{ws2: w.ws2, ws3: w.ws3, ss3: w.ss3, ss4: w.ss4}); cw != (fusedWant{}) {
		list := sortedEdgeList(reg.edgeSet, r.g.EdgeBound())
		add(taskEdgePass, cw, nil, list, len(list))
	}
	if w.ds7 {
		chunks = append(chunks, fusedChunk{kind: taskDS7, decl: -1, w: fusedWant{ds7: true}})
	}
	return chunks
}

// splice merges a fresh region result into the previous full result:
// prior violations anchored in the recomputed region are dropped, the
// rest kept, the fresh findings added, and the whole re-sorted
// canonically.
func splice(r *runner, prev, fresh *Result, reg deltaRegion) *Result {
	out := newCollector(0)
	for _, v := range prev.Violations {
		if staleViolation(r, v, reg) {
			continue
		}
		out.emit(v)
	}
	for _, v := range fresh.Violations {
		out.emit(v)
	}
	return out.result()
}

// staleViolation reports whether a prior violation lies in the region the
// delta invalidates (and was therefore recomputed).
func staleViolation(r *runner, v Violation, reg deltaRegion) bool {
	switch v.Rule {
	case WS1, SS1, SS2, DS5:
		return reg.nodeSet.has(int(v.Node)) || !r.g.HasNode(v.Node)
	case WS2, WS3, SS3, SS4:
		return reg.edgeSet.has(int(v.Edge)) || !r.g.HasEdge(v.Edge)
	case WS4, DS1, DS2, DS6:
		return reg.sourceSet.has(int(v.Node)) || !r.g.HasNode(v.Node)
	case DS3, DS4:
		return reg.targetSet.has(int(v.Node)) || !r.g.HasNode(v.Node)
	case DS7:
		if !r.g.HasNode(v.Node) {
			return true
		}
		for label := range reg.affected {
			if r.s.SubtypeNamed(label, v.TypeName) {
				return true
			}
		}
		return false
	}
	return true // unknown rule: be safe, recompute path dropped it
}
