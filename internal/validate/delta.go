package validate

import (
	"pgschema/internal/pg"
	"pgschema/internal/schema"
)

// Delta lists the graph elements touched by a mutation batch: nodes that
// were added, relabeled, or had properties changed, and edges that were
// added, removed, or had properties changed. Removed edges may be listed
// (their endpoints are still resolvable); removed nodes should instead be
// covered by listing their former neighbours.
type Delta struct {
	Nodes []pg.NodeID
	Edges []pg.EdgeID
	// Labels lists additional node types whose @key buckets must be
	// recomputed: the former labels of relabeled nodes (the current
	// label is derived from Nodes automatically). Without this, a
	// relabeled node could leave a stale key-conflict report behind.
	Labels []string
}

// Revalidate produces the full validation result after a mutation without
// re-checking the entire graph: it re-runs each rule only over the region
// the delta can influence and splices the fresh findings into prev.
//
// The influence regions per rule:
//
//	WS1, SS1, SS2, DS5      the delta nodes themselves
//	WS2, WS3, SS3, SS4      the delta edges themselves
//	WS4, DS1, DS2, DS6      delta nodes and sources of delta edges
//	DS3, DS4                delta nodes and targets of delta edges
//	DS7                     every node type ⊒-related to a delta node
//	                        (key buckets are global per type)
//
// prev must be a Strong-mode result for the same schema over the graph
// state before the mutation; the returned result equals what a full
// Validate would produce on the current state (the equivalence the tests
// verify).
func Revalidate(s *schema.Schema, g *pg.Graph, prev *Result, delta Delta) *Result {
	return RevalidateWithOptions(s, g, prev, delta, Options{})
}

// RevalidateWithOptions is Revalidate with run options. Only
// Options.Program is consulted: a program compiled from s attaches its
// graph binding to the restricted sweeps, so DS7's per-type node
// enumeration reuses the cached tables instead of walking the label
// index (free when the graph is at the epoch the binding was built at,
// e.g. on a server whose graph only mutates under lock).
func RevalidateWithOptions(s *schema.Schema, g *pg.Graph, prev *Result, delta Delta, opts Options) *Result {
	r := &runner{s: s, g: g}
	if p := opts.Program; p != nil && p.s == s {
		r.bind = p.bindTo(g)
	}

	nodeSet := make(map[pg.NodeID]bool)
	edgeSet := make(map[pg.EdgeID]bool)
	sourceSet := make(map[pg.NodeID]bool) // delta nodes ∪ sources of delta edges
	targetSet := make(map[pg.NodeID]bool) // delta nodes ∪ targets of delta edges
	for _, n := range delta.Nodes {
		nodeSet[n] = true
		sourceSet[n] = true
		targetSet[n] = true
		// A node's label and existence feed into the edge-scoped rules
		// of every incident edge (WS2/WS3/SS3/SS4 key off λ(v1) and
		// λ(v2)), so incident edges — including freshly removed ones —
		// join the region.
		for _, e := range g.AllOutEdges(n) {
			edgeSet[e] = true
		}
		for _, e := range g.AllInEdges(n) {
			edgeSet[e] = true
		}
	}
	for _, e := range delta.Edges {
		edgeSet[e] = true
	}
	for e := range edgeSet {
		src, dst := g.Endpoints(e)
		sourceSet[src] = true
		targetSet[dst] = true
	}
	// Node types whose key buckets may have shifted. Removed nodes
	// still expose their former label, so they contribute too.
	affectedTypes := make(map[string]bool)
	for n := range nodeSet {
		affectedTypes[g.NodeLabel(n)] = true
	}
	for _, l := range delta.Labels {
		affectedTypes[l] = true
	}

	// Fresh violations from the affected region: each rule runs with its
	// element space restricted to the region it can newly fire in.
	c := newCollector(0)
	run := func(rule Rule, only map[pg.NodeID]bool, onlyEdges map[pg.EdgeID]bool) {
		r.onlyNodes, r.onlyEdges, r.onlyTypes = only, onlyEdges, nil
		r.runRule(rule, c.emit, 0, 1)
	}
	for _, rule := range []Rule{WS1, SS1, SS2, DS5} {
		run(rule, nodeSet, nil)
	}
	for _, rule := range []Rule{WS2, WS3, SS3, SS4} {
		run(rule, nil, edgeSet)
	}
	for _, rule := range []Rule{WS4, DS1, DS2, DS6} {
		run(rule, sourceSet, nil)
	}
	for _, rule := range []Rule{DS3, DS4} {
		run(rule, targetSet, nil)
	}
	// DS7 needs the full key buckets of the affected types.
	r.onlyNodes, r.onlyEdges, r.onlyTypes = nil, nil, affectedTypes
	r.runRule(DS7, c.emit, 0, 1)
	fresh := c.result()

	// Splice: drop prior violations anchored in the affected region,
	// keep the rest, add the fresh findings.
	out := newCollector(0)
	for _, v := range prev.Violations {
		if staleViolation(r, v, nodeSet, edgeSet, sourceSet, targetSet, affectedTypes) {
			continue
		}
		out.emit(v)
	}
	for _, v := range fresh.Violations {
		out.emit(v)
	}
	return out.result()
}

// staleViolation reports whether a prior violation lies in the region the
// delta invalidates (and was therefore recomputed).
func staleViolation(r *runner, v Violation, nodeSet map[pg.NodeID]bool, edgeSet map[pg.EdgeID]bool, sourceSet, targetSet map[pg.NodeID]bool, affectedTypes map[string]bool) bool {
	switch v.Rule {
	case WS1, SS1, SS2, DS5:
		return nodeSet[v.Node] || !r.g.HasNode(v.Node)
	case WS2, WS3, SS3, SS4:
		return edgeSet[v.Edge] || !r.g.HasEdge(v.Edge)
	case WS4, DS1, DS2, DS6:
		return sourceSet[v.Node] || !r.g.HasNode(v.Node)
	case DS3, DS4:
		return targetSet[v.Node] || !r.g.HasNode(v.Node)
	case DS7:
		if !r.g.HasNode(v.Node) {
			return true
		}
		for label := range affectedTypes {
			if r.s.SubtypeNamed(label, v.TypeName) {
				return true
			}
		}
		return false
	}
	return true // unknown rule: be safe, recompute path dropped it
}
