package validate

// Tests for the compiled-program layer: binding reuse across runs,
// epoch-driven invalidation when the graph mutates, and the
// compile-on-the-fly fallback when Options.Program does not match the
// schema being validated. These are internal tests (they inspect the
// binding cache directly), so the conformant graph is hand-built — the
// gen package imports validate and cannot be used here.

import (
	"strconv"
	"testing"

	"pgschema/internal/pg"
	"pgschema/internal/values"
)

const programSchema = `
type Author @key(fields: ["name"]) {
	name: String! @required
	age: Int
	favoriteBook: Book
	relatedAuthor: [Author] @distinct @noLoops
}
type Book {
	title: String! @required
	pages: Int
	author(since: Int!, role: String): [Author] @required @distinct
}
type BookSeries {
	contains: [Book] @required @uniqueForTarget
}
type Publisher {
	published: [Book] @uniqueForTarget @requiredForTarget
}`

// programGraph hand-builds a graph with n nodes per type that strongly
// satisfies programSchema: unique author keys, every @required property
// and edge present, every Book with exactly one incoming published and
// contains edge, no loops, no duplicate relationship targets.
func programGraph(n int) *pg.Graph {
	g := pg.New()
	authors := make([]pg.NodeID, n)
	for i := range authors {
		a := g.AddNode("Author")
		g.SetNodeProp(a, "name", values.String("author-"+strconv.Itoa(i)))
		g.SetNodeProp(a, "age", values.Int(int64(30+i%40)))
		authors[i] = a
	}
	books := make([]pg.NodeID, n)
	for i := range books {
		b := g.AddNode("Book")
		g.SetNodeProp(b, "title", values.String("book-"+strconv.Itoa(i)))
		g.SetNodeProp(b, "pages", values.Int(int64(100+i)))
		e := g.MustAddEdge(b, authors[i], "author")
		g.SetEdgeProp(e, "since", values.Int(int64(2000+i%20)))
		books[i] = b
	}
	for i, a := range authors {
		g.MustAddEdge(a, books[i], "favoriteBook")
		if n > 1 {
			g.MustAddEdge(a, authors[(i+1)%n], "relatedAuthor")
		}
	}
	for i := 0; i < n; i++ {
		s := g.AddNode("BookSeries")
		g.MustAddEdge(s, books[i], "contains")
		p := g.AddNode("Publisher")
		g.MustAddEdge(p, books[i], "published")
	}
	return g
}

func TestProgramGraphConformant(t *testing.T) {
	s := build(t, programSchema)
	if res := Validate(s, programGraph(5), Options{}); !res.OK() {
		t.Fatalf("hand-built graph not conformant: %v", res.Violations)
	}
}

func TestProgramStats(t *testing.T) {
	s := build(t, programSchema)
	st := Compile(s).Stats()
	if st.Types == 0 || st.Names == 0 || st.Fields == 0 || st.Obligations == 0 {
		t.Errorf("degenerate stats for a directive-complete schema: %+v", st)
	}
	if st.CompileTime <= 0 {
		t.Errorf("compile time not recorded: %+v", st)
	}
}

func TestProgramBindingReusedAcrossRuns(t *testing.T) {
	s := build(t, programSchema)
	g := programGraph(20)
	p := Compile(s)
	if res := Validate(s, g, Options{Program: p}); !res.OK() {
		t.Fatalf("conformant graph invalid: %v", res.Violations)
	}
	b := p.bound.Load()
	if b == nil {
		t.Fatal("no binding cached after a compiled run")
	}
	if res := Validate(s, g, Options{Program: p}); !res.OK() {
		t.Fatalf("second run invalid: %v", res.Violations)
	}
	if p.bound.Load() != b {
		t.Error("binding rebuilt although the graph did not change")
	}
}

func TestProgramBindingInvalidatedByMutation(t *testing.T) {
	s := build(t, programSchema)
	g := programGraph(10)
	p := Compile(s)
	if res := Validate(s, g, Options{Program: p}); !res.OK() {
		t.Fatalf("conformant graph invalid: %v", res.Violations)
	}
	b := p.bound.Load()

	// Mutating the graph bumps its epoch; the next compiled run must
	// rebind and see the mutation (a @required property vanished).
	a := g.NodesLabeled("Author")[0]
	g.DeleteNodeProp(a, "name")
	res := Validate(s, g, Options{Program: p})
	if p.bound.Load() == b {
		t.Error("stale binding reused after the graph mutated")
	}
	if n := len(res.ByRule()[DS5]); n != 1 {
		t.Errorf("missing @required property not seen through rebinding: got %d DS5 violations, want 1 (%v)",
			n, res.Violations)
	}

	// A node added under a brand-new label (new Sym, new byLabel entry)
	// must also be picked up.
	g.AddNode("Stranger")
	res = Validate(s, g, Options{Program: p})
	if n := len(res.ByRule()[SS1]); n != 1 {
		t.Errorf("undeclared label not seen through rebinding: got %d SS1 violations (%v)", n, res.Violations)
	}
}

func TestProgramSchemaMismatchFallsBack(t *testing.T) {
	s := build(t, programSchema)
	other := build(t, sessionSchema)
	wrong := Compile(other)
	g := programGraph(5)
	res := Validate(s, g, Options{Program: wrong})
	if !res.OK() {
		t.Errorf("mismatched program not ignored: %v", res.Violations)
	}
	if wrong.bound.Load() != nil {
		t.Error("mismatched program was bound to the graph")
	}
}

func TestRevalidateWithProgram(t *testing.T) {
	s := build(t, sessionSchema)
	g := sessionGraph()
	p := Compile(s)
	prev := Validate(s, g, Options{Program: p})

	u := g.NodesLabeled("User")[0]
	g.SetNodeProp(u, "login", values.Int(42)) // WS1
	got := RevalidateWithOptions(s, g, prev, Delta{Nodes: []pg.NodeID{u}}, Options{Program: p})
	want := Validate(s, g, Options{})
	if len(got.Violations) != len(want.Violations) {
		t.Fatalf("revalidate with program: got %v, want %v", got.Violations, want.Violations)
	}
	for i := range got.Violations {
		if got.Violations[i] != want.Violations[i] {
			t.Errorf("violation %d: got %+v, want %+v", i, got.Violations[i], want.Violations[i])
		}
	}
}
