package validate

// Allocation regression tests for the fused hot paths: on a
// violation-free graph with a compiled program bound, the node and edge
// passes must run essentially allocation-free. AllocsPerRun pins the
// budget so a stray fmt.Sprintf, map growth, or interface boxing on the
// happy path fails the suite rather than a benchmark someone has to
// remember to read.

import (
	"testing"
)

// allocRunner builds a runner wired the way the fused engine wires its
// workers: compiled program bound to a conformant graph, one scratch.
func allocRunner(t *testing.T) (*runner, fusedWant, *fusedScratch) {
	t.Helper()
	s := build(t, programSchema)
	g := programGraph(200)
	p := Compile(s)
	r := &runner{s: s, g: g, opts: Options{}}
	r.bind = p.bindTo(g)
	return r, wantRules(Options{}.rules()), newFusedScratch(r.bind.symCount)
}

func TestFusedNodePassAllocFree(t *testing.T) {
	r, w, sc := allocRunner(t)
	emit := func(v Violation) { t.Errorf("unexpected violation: %+v", v) }
	// Warm-up lets the DS1 seen map grow to its steady-state size.
	r.fusedNodePass(w, emit, nil, 0, r.g.NodeBound(), sc)

	nodes := r.g.NumNodes()
	avg := testing.AllocsPerRun(10, func() {
		r.fusedNodePass(w, emit, nil, 0, r.g.NodeBound(), sc)
	})
	// Budget: at most one allocation per 20 nodes — catches any
	// per-node allocation while tolerating incidental runtime noise.
	if limit := float64(nodes) / 20; avg > limit {
		t.Errorf("fused node pass: %.1f allocs per run over %d nodes (limit %.1f)", avg, nodes, limit)
	}
}

func TestFusedEdgePassAllocFree(t *testing.T) {
	r, w, _ := allocRunner(t)
	emit := func(v Violation) { t.Errorf("unexpected violation: %+v", v) }
	r.fusedEdgePass(w, emit, nil, 0, r.g.EdgeBound())

	edges := r.g.NumEdges()
	if edges == 0 {
		t.Fatal("conformant graph has no edges; edge-pass budget meaningless")
	}
	avg := testing.AllocsPerRun(10, func() {
		r.fusedEdgePass(w, emit, nil, 0, r.g.EdgeBound())
	})
	if limit := float64(edges) / 20; avg > limit {
		t.Errorf("fused edge pass: %.1f allocs per run over %d edges (limit %.1f)", avg, edges, limit)
	}
}
