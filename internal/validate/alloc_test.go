package validate

// Allocation regression tests for the fused hot paths: on a
// violation-free graph with a compiled program bound, the node and edge
// passes must run essentially allocation-free. AllocsPerRun pins the
// budget so a stray fmt.Sprintf, map growth, or interface boxing on the
// happy path fails the suite rather than a benchmark someone has to
// remember to read.

import (
	"testing"
)

// allocRunner builds a runner wired the way the fused engine wires its
// workers: compiled program bound to a conformant graph, one scratch.
func allocRunner(t *testing.T) (*runner, fusedWant, *fusedScratch) {
	t.Helper()
	s := build(t, programSchema)
	g := programGraph(200)
	p := Compile(s)
	r := &runner{s: s, g: g, opts: Options{}}
	r.bind = p.bindTo(g)
	return r, wantRules(Options{}.rules()), newFusedScratch(r.bind.symCount)
}

func TestFusedNodePassAllocFree(t *testing.T) {
	r, w, sc := allocRunner(t)
	emit := func(v Violation) { t.Errorf("unexpected violation: %+v", v) }
	// Warm-up lets the DS1 seen map grow to its steady-state size.
	r.fusedNodePass(w, emit, nil, 0, r.g.NodeBound(), sc)

	nodes := r.g.NumNodes()
	avg := testing.AllocsPerRun(10, func() {
		r.fusedNodePass(w, emit, nil, 0, r.g.NodeBound(), sc)
	})
	// Budget: at most one allocation per 20 nodes — catches any
	// per-node allocation while tolerating incidental runtime noise.
	if limit := float64(nodes) / 20; avg > limit {
		t.Errorf("fused node pass: %.1f allocs per run over %d nodes (limit %.1f)", avg, nodes, limit)
	}
}

func TestFusedEdgePassAllocFree(t *testing.T) {
	r, w, _ := allocRunner(t)
	emit := func(v Violation) { t.Errorf("unexpected violation: %+v", v) }
	r.fusedEdgePass(w, emit, nil, 0, r.g.EdgeBound())

	edges := r.g.NumEdges()
	if edges == 0 {
		t.Fatal("conformant graph has no edges; edge-pass budget meaningless")
	}
	avg := testing.AllocsPerRun(10, func() {
		r.fusedEdgePass(w, emit, nil, 0, r.g.EdgeBound())
	})
	if limit := float64(edges) / 20; avg > limit {
		t.Errorf("fused edge pass: %.1f allocs per run over %d edges (limit %.1f)", avg, edges, limit)
	}
}

// TestFusedDensePassAllocFree pins the branch-free kernel paths: the
// word-walking node and edge passes over the presence bitsets must stay
// allocation-free once the kernels and scratch are warm.
func TestFusedDensePassAllocFree(t *testing.T) {
	r, w, sc := allocRunner(t)
	emit := func(v Violation) { t.Errorf("unexpected violation: %+v", v) }
	r.bind.kernels() // built once per epoch, outside the budget
	r.fusedNodePassDense(w, emit, 0, r.g.NodeBound(), sc)
	r.fusedEdgePassDense(w, emit, 0, r.g.EdgeBound())

	nodes := r.g.NumNodes()
	avg := testing.AllocsPerRun(10, func() {
		r.fusedNodePassDense(w, emit, 0, r.g.NodeBound(), sc)
	})
	if limit := float64(nodes) / 20; avg > limit {
		t.Errorf("dense node pass: %.1f allocs per run over %d nodes (limit %.1f)", avg, nodes, limit)
	}
	avg = testing.AllocsPerRun(10, func() {
		r.fusedEdgePassDense(w, emit, 0, r.g.EdgeBound())
	})
	if limit := float64(r.g.NumEdges()) / 20; avg > limit {
		t.Errorf("dense edge pass: %.1f allocs per run over %d edges (limit %.1f)", avg, r.g.NumEdges(), limit)
	}
}

// TestParallelAllocBudget pins the flat-allocation contract of the
// parallel engine end to end: a warm parallel validation may allocate
// at most twice what the warm sequential run does. The budget is
// measured, not hardcoded, so the test tracks the sequential baseline
// instead of rotting.
func TestParallelAllocBudget(t *testing.T) {
	s := build(t, programSchema)
	g := programGraph(2000)
	p := Compile(s)

	seqOpts := Options{Program: p, Workers: 1}
	parOpts := Options{Program: p, Workers: 4, ElementSharding: true}
	// Warm the binding, kernels, pools, and scheduler state.
	Validate(s, g, seqOpts)
	Validate(s, g, parOpts)

	seq := testing.AllocsPerRun(20, func() {
		if !Validate(s, g, seqOpts).OK() {
			t.Fatal("fixture not conformant")
		}
	})
	par := testing.AllocsPerRun(20, func() {
		if !Validate(s, g, parOpts).OK() {
			t.Fatal("fixture not conformant")
		}
	})
	if par > 2*seq {
		t.Errorf("parallel run allocates %.0f/op, over 2x the sequential %.0f/op", par, seq)
	}
}
