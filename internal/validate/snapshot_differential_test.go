package validate_test

// The snapshot differential proves the mapped-snapshot claim the
// .pgsnap format rests on: validating a graph served from a memory-
// mapped snapshot file emits the byte-identical canonically-sorted
// violation set as validating the heap-resident original — across
// engines, worker counts, and satisfaction modes. The fused/compiled
// configurations bind straight to the mapped columns (the cold path);
// the rule-by-rule configurations force store inflation; both routes
// must agree with the heap baseline.

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"pgschema/internal/gen"
	"pgschema/internal/pg"
	"pgschema/internal/validate"
)

// mapGraph round-trips g through the .pgsnap format and returns the
// memory-mapped reopening.
func mapGraph(t *testing.T, g *pg.Graph) *pg.Graph {
	t.Helper()
	path := filepath.Join(t.TempDir(), "diff.pgsnap")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := pg.WriteSnapshot(f, g.Snapshot()); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	mg, err := pg.OpenSnapshot(path, pg.Verify())
	if err != nil {
		t.Fatalf("OpenSnapshot: %v", err)
	}
	t.Cleanup(func() { mg.Close() })
	return mg
}

// assertMappedEquivalence validates the heap graph and its mapped
// round-trip under every engine configuration and mode, requiring
// identical violation sets. A fresh mapped graph is opened per
// configuration so each one starts cold (no configuration inherits an
// inflated store from a previous one).
func assertMappedEquivalence(t *testing.T, src string, g *pg.Graph, label string) {
	t.Helper()
	s := buildDiff(t, src)
	prog := validate.Compile(s)
	for _, m := range diffModes {
		for _, cfg := range engineConfigs {
			opts := validate.Options{Mode: m.mode}
			cfg.set(&opts)
			if cfg.compiled {
				opts.Program = prog
			}
			want := renderViolations(validate.Validate(s, g, opts))
			mg := mapGraph(t, g)
			got := renderViolations(validate.Validate(s, mg, opts))
			if got != want {
				t.Errorf("%s: mode %s, engine %s: mapped snapshot diverges from heap:\n--- heap ---\n%s--- mapped ---\n%s",
					label, m.name, cfg.name, want, got)
			}
		}
	}
}

func TestMappedSnapshotDifferential(t *testing.T) {
	s := buildDiff(t, diffSchema)
	for seed := int64(0); seed < 3; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			base, err := gen.Conformant(s, gen.Config{Seed: seed, NodesPerType: 8})
			if err != nil {
				t.Fatalf("conformant: %v", err)
			}
			assertMappedEquivalence(t, diffSchema, base, "clean graph")
			for _, rule := range validate.AllRules {
				g := base.Clone()
				desc, err := gen.Inject(s, g, rule, seed)
				if err != nil {
					t.Fatalf("inject %s: %v", rule, err)
				}
				assertMappedEquivalence(t, diffSchema, g, fmt.Sprintf("inject %s (%s)", rule, desc))
			}
		})
	}
}

// TestMappedSnapshotRevalidate checks the mutate-then-revalidate path
// on a mapped graph: Apply inflates the store copy-on-write, the
// patched snapshot stays record-backed, and incremental revalidation
// over it matches a full run.
func TestMappedSnapshotRevalidate(t *testing.T) {
	s := buildDiff(t, diffSchema)
	base, err := gen.Conformant(s, gen.Config{Seed: 1, NodesPerType: 8})
	if err != nil {
		t.Fatalf("conformant: %v", err)
	}
	mg := mapGraph(t, base)
	prog := validate.Compile(s)
	opts := validate.Options{Program: prog}
	prev := validate.Validate(s, mg, opts)

	u, err := mg.Apply(pg.Delta{
		AddNodes: []pg.AddNodeSpec{{Label: "Author"}}, // misses @required name
	})
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	inc := renderViolations(validate.RevalidateWithOptions(s, mg, prev, validate.DeltaFor(u.Touched()), opts))
	full := renderViolations(validate.Validate(s, mg, opts))
	if inc != full {
		t.Errorf("incremental revalidation on a mapped graph diverges:\n--- full ---\n%s--- incremental ---\n%s", full, inc)
	}
	if inc == "" {
		t.Errorf("expected at least the @required violation for the new Author")
	}
}
