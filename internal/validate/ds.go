package validate

import (
	"fmt"
	"strings"

	"pgschema/internal/pg"
	"pgschema/internal/schema"
	"pgschema/internal/values"
)

// ds1 — DS1 (@distinct: edges identified by nodes and label): if
// (@distinct, ∅) ∈ directivesF(t, f), no two distinct f-labeled edges may
// connect the same source node (of a type ⊑ t) to the same target node.
//
// Note: the paper's definition literally writes λ(e1) ⊑S t for the edge
// e1; following the prose of §3.3 we read this as λ(v1) ⊑S t (see the
// errata section of DESIGN.md).
func (r *runner) ds1(emit emitFunc, shard, nShards int) {
	for _, fd := range r.relationshipDeclarations() {
		if !schema.HasDirective(fd.Directives, schema.DirDistinct) {
			continue
		}
		for _, v1 := range r.nodesOfType(fd.Owner) {
			if !nodeShard(v1, shard, nShards) {
				continue
			}
			seen := make(map[pg.NodeID]int)
			for _, e := range r.g.OutEdgesLabeled(v1, fd.Name) {
				_, dst := r.g.Endpoints(e)
				seen[dst]++
				if seen[dst] == 2 && !r.drop() {
					emit(Violation{
						Rule: DS1, Node: v1, Edge: e,
						TypeName: fd.Owner, Field: fd.Name,
						Message: fmt.Sprintf("%s: multiple %q edges to %s violate @distinct on %s.%s",
							nodeRef(v1), fd.Name, nodeRef(dst), fd.Owner, fd.Name),
					})
				}
			}
		}
	}
}

// ds2 — DS2 (@noLoops): if (@noLoops, ∅) ∈ directivesF(t, f), no f-labeled
// edge from a node of a type ⊑ t may have ρ(e) = (v, v).
func (r *runner) ds2(emit emitFunc, shard, nShards int) {
	for _, fd := range r.relationshipDeclarations() {
		if !schema.HasDirective(fd.Directives, schema.DirNoLoops) {
			continue
		}
		for _, v := range r.nodesOfType(fd.Owner) {
			if !nodeShard(v, shard, nShards) {
				continue
			}
			for _, e := range r.g.OutEdgesLabeled(v, fd.Name) {
				if _, dst := r.g.Endpoints(e); dst == v && !r.drop() {
					emit(Violation{
						Rule: DS2, Node: v, Edge: e,
						TypeName: fd.Owner, Field: fd.Name,
						Message: fmt.Sprintf("%s: %q loop edge violates @noLoops on %s.%s",
							nodeRef(v), fd.Name, fd.Owner, fd.Name),
					})
				}
			}
		}
	}
}

// ds3 — DS3 (@uniqueForTarget: target has at most one incoming edge): if
// (@uniqueForTarget, ∅) ∈ directivesF(t, f), every possible target node
// may have at most one incoming f-labeled edge from nodes of a type ⊑ t.
//
// Note: the paper writes λ(v2) ⊑S typeS(t, f) for the *source* of the
// second edge; following the prose we require both sources ⊑ t (errata in
// DESIGN.md).
func (r *runner) ds3(emit emitFunc, shard, nShards int) {
	if r.opts.NaivePairScan {
		r.ds3Naive(emit, shard, nShards)
		return
	}
	for _, fd := range r.relationshipDeclarations() {
		if !schema.HasDirective(fd.Directives, schema.DirUniqueForTarget) {
			continue
		}
		for _, v3 := range r.targetNodes(fd) {
			if !nodeShard(v3, shard, nShards) {
				continue
			}
			n := 0
			var second pg.EdgeID = -1
			for _, e := range r.g.InEdgesLabeled(v3, fd.Name) {
				src, _ := r.g.Endpoints(e)
				if !r.s.SubtypeNamed(r.g.NodeLabel(src), fd.Owner) {
					continue
				}
				n++
				if n == 2 {
					second = e
				}
			}
			if n > 1 && !r.drop() {
				emit(Violation{
					Rule: DS3, Node: v3, Edge: second,
					TypeName: fd.Owner, Field: fd.Name,
					Message: fmt.Sprintf("%s: %d incoming %q edges from %s nodes violate @uniqueForTarget on %s.%s",
						nodeRef(v3), n, fd.Name, fd.Owner, fd.Owner, fd.Name),
				})
			}
		}
	}
}

// ds3Naive is the pair scan over E × E from the definition, kept for the
// index ablation benchmark. Sharding goes by the target node — the key
// the dedup map uses — mirroring the indexed ds3 and avoiding duplicate
// reports when two shards hold different first edges into one target.
func (r *runner) ds3Naive(emit emitFunc, shard, nShards int) {
	for _, fd := range r.relationshipDeclarations() {
		if !schema.HasDirective(fd.Directives, schema.DirUniqueForTarget) {
			continue
		}
		// The indexed ds3 only examines nodes of the target type; the pair
		// scan must apply the same restriction or it reports mislabeled
		// targets (WS3's concern) that the indexed engine skips.
		targetLabels := make(map[string]bool)
		for _, l := range r.s.ConcreteTargets(fd.Type.Base()) {
			targetLabels[l] = true
		}
		edges := r.edges()
		reported := make(map[pg.NodeID]bool)
		for i, e1 := range edges {
			if r.g.EdgeLabel(e1) != fd.Name {
				continue
			}
			s1, t1 := r.g.Endpoints(e1)
			if !nodeShard(t1, shard, nShards) || reported[t1] {
				continue
			}
			if !targetLabels[r.g.NodeLabel(t1)] {
				continue
			}
			if !r.s.SubtypeNamed(r.g.NodeLabel(s1), fd.Owner) {
				continue
			}
			// e1 is the first admissible edge into t1; counting the rest of
			// the pair scan makes the count — and the witness edge, since
			// adjacency lists are in edge-id order — byte-identical to the
			// indexed implementation's.
			n := 1
			var second pg.EdgeID = -1
			for _, e2 := range edges[i+1:] {
				if r.g.EdgeLabel(e2) != fd.Name {
					continue
				}
				s2, t2 := r.g.Endpoints(e2)
				if t1 != t2 || !r.s.SubtypeNamed(r.g.NodeLabel(s2), fd.Owner) {
					continue
				}
				n++
				if n == 2 {
					second = e2
				}
			}
			reported[t1] = true
			if n > 1 && !r.drop() {
				emit(Violation{
					Rule: DS3, Node: t1, Edge: second,
					TypeName: fd.Owner, Field: fd.Name,
					Message: fmt.Sprintf("%s: %d incoming %q edges from %s nodes violate @uniqueForTarget on %s.%s",
						nodeRef(t1), n, fd.Name, fd.Owner, fd.Owner, fd.Name),
				})
			}
		}
	}
}

// ds4 — DS4 (@requiredForTarget: target has at least one incoming edge):
// if (@requiredForTarget, ∅) ∈ directivesF(t, f), every node whose label
// is a subtype of the field's target type must have at least one incoming
// f-labeled edge from a node of a type ⊑ t.
func (r *runner) ds4(emit emitFunc, shard, nShards int) {
	for _, fd := range r.relationshipDeclarations() {
		if !schema.HasDirective(fd.Directives, schema.DirRequiredForTarget) {
			continue
		}
		for _, v2 := range r.targetNodes(fd) {
			if !nodeShard(v2, shard, nShards) {
				continue
			}
			found := false
			for _, e := range r.g.InEdgesLabeled(v2, fd.Name) {
				src, _ := r.g.Endpoints(e)
				if r.s.SubtypeNamed(r.g.NodeLabel(src), fd.Owner) {
					found = true
					break
				}
			}
			if !found && !r.drop() {
				emit(Violation{
					Rule: DS4, Node: v2, Edge: -1,
					TypeName: fd.Owner, Field: fd.Name,
					Message: fmt.Sprintf("%s (%s): no incoming %q edge from a %s node, violating @requiredForTarget on %s.%s",
						nodeRef(v2), r.g.NodeLabel(v2), fd.Name, fd.Owner, fd.Owner, fd.Name),
				})
			}
		}
	}
}

// targetNodes yields the nodes v with λ(v) ⊑S basetype(typeF(t, f)) — the
// possible targets of the relationship. (Using the base type rather than
// the literal wrapped type closes the formal gap for non-null field types;
// see DESIGN.md errata.)
func (r *runner) targetNodes(fd *schema.FieldDef) []pg.NodeID {
	return r.nodesOfType(fd.Type.Base())
}

// ds5 — DS5 (@required on an attribute: property is required): if
// (@required, ∅) ∈ directivesF(t, f) and typeF(t, f) ∈ S ∪ WS, every node
// of a type ⊑ t must define the property, and the value must be a
// nonempty list when the field type is a list type.
func (r *runner) ds5(emit emitFunc, shard, nShards int) {
	for _, fd := range r.attributeDeclarations() {
		if !schema.HasDirective(fd.Directives, schema.DirRequired) {
			continue
		}
		for _, v := range r.nodesOfType(fd.Owner) {
			if !nodeShard(v, shard, nShards) {
				continue
			}
			val, ok := r.g.NodeProp(v, fd.Name)
			switch {
			case !ok:
				if !r.drop() {
					emit(Violation{
						Rule: DS5, Node: v, Edge: -1,
						TypeName: fd.Owner, Field: fd.Name, Property: fd.Name,
						Message: fmt.Sprintf("%s (%s): missing property %q required by @required on %s.%s",
							nodeRef(v), r.g.NodeLabel(v), fd.Name, fd.Owner, fd.Name),
					})
				}
			case fd.Type.IsList() && val.Kind() == values.KindList && val.Len() == 0:
				if !r.drop() {
					emit(Violation{
						Rule: DS5, Node: v, Edge: -1,
						TypeName: fd.Owner, Field: fd.Name, Property: fd.Name,
						Message: fmt.Sprintf("%s (%s): property %q is an empty list, but @required on %s.%s demands a nonempty list",
							nodeRef(v), r.g.NodeLabel(v), fd.Name, fd.Owner, fd.Name),
					})
				}
			}
		}
	}
}

// ds6 — DS6 (@required on a relationship: edge is required): if
// (@required, ∅) ∈ directivesF(t, f) and typeF(t, f) ∉ S ∪ WS, every node
// of a type ⊑ t must have at least one outgoing f-labeled edge.
func (r *runner) ds6(emit emitFunc, shard, nShards int) {
	for _, fd := range r.relationshipDeclarations() {
		if !schema.HasDirective(fd.Directives, schema.DirRequired) {
			continue
		}
		for _, v1 := range r.nodesOfType(fd.Owner) {
			if !nodeShard(v1, shard, nShards) {
				continue
			}
			if r.g.OutDegreeLabeled(v1, fd.Name) == 0 && !r.drop() {
				emit(Violation{
					Rule: DS6, Node: v1, Edge: -1,
					TypeName: fd.Owner, Field: fd.Name,
					Message: fmt.Sprintf("%s (%s): no outgoing %q edge, violating @required on %s.%s",
						nodeRef(v1), r.g.NodeLabel(v1), fd.Name, fd.Owner, fd.Name),
				})
			}
		}
	}
}

// ds7 — DS7 (@key: key properties identify nodes): if
// (@key, {fields: [f1 … fn]}) ∈ directivesT(t), any two nodes of types
// ⊑ t that agree on every key property (both absent, or both present and
// equal — considering only the fi whose type at t is scalar) must be the
// same node.
func (r *runner) ds7(emit emitFunc, shard, nShards int) {
	_ = shard // DS7 buckets globally; it is never sharded (see parallel()).
	_ = nShards
	// An unrestricted sweep with a bound program reads the cached bucket
	// index instead of rebuilding it; restricted sweeps (incremental
	// revalidation) bucket only the affected types below.
	if r.bind != nil && r.onlyNodes == nil && r.onlyTypes == nil {
		for _, ks := range r.bind.keyIndex(r.s) {
			for _, nodes := range ks.buckets {
				if len(nodes) < 2 || r.drop() {
					continue
				}
				emit(Violation{
					Rule: DS7, Node: nodes[0], Edge: -1,
					TypeName: ks.typeName,
					Message: fmt.Sprintf("%d nodes (%s, %s, …) of type %s agree on key {%s}, violating @key",
						len(nodes), nodeRef(nodes[0]), nodeRef(nodes[1]), ks.typeName, strings.Join(ks.keyFields, ", ")),
				})
			}
		}
		return
	}
	for _, td := range r.s.Types() {
		if !r.typeAllowed(td.Name) {
			continue
		}
		for _, keyFields := range td.KeyFieldSets() {
			var attrs []string
			for _, f := range keyFields {
				fd := td.Field(f)
				if fd != nil && r.s.IsAttribute(fd) {
					attrs = append(attrs, f)
				}
			}
			buckets := make(map[string][]pg.NodeID)
			for _, v := range r.nodesOfType(td.Name) {
				var sb strings.Builder
				for _, f := range attrs {
					if val, ok := r.g.NodeProp(v, f); ok {
						sb.WriteString("P" + val.Key())
					} else {
						sb.WriteString("A")
					}
					sb.WriteByte('\x00')
				}
				key := sb.String()
				buckets[key] = append(buckets[key], v)
			}
			for _, nodes := range buckets {
				if len(nodes) < 2 || r.drop() {
					continue
				}
				emit(Violation{
					Rule: DS7, Node: nodes[0], Edge: -1,
					TypeName: td.Name,
					Message: fmt.Sprintf("%d nodes (%s, %s, …) of type %s agree on key {%s}, violating @key",
						len(nodes), nodeRef(nodes[0]), nodeRef(nodes[1]), td.Name, strings.Join(keyFields, ", ")),
				})
			}
		}
	}
}
