// Package validate implements the paper's notion of schema satisfaction
// for Property Graphs (Section 5) and thereby the schema validation
// problem of §6.1:
//
//   - weak satisfaction (Definition 5.1, rules WS1–WS4),
//   - directives satisfaction (Definition 5.2, rules DS1–DS7), and
//   - strong satisfaction (Definition 5.3, rules SS1–SS4 on top of the
//     former two).
//
// Every rule is independently addressable; a validation run reports all
// violations (or up to a configurable limit) with the graph elements and
// schema elements involved. A parallel engine exploits the observation
// behind Theorem 1 that all rules are constant-depth first-order
// conditions evaluable independently per graph element.
//
// Options.CollectTimings records per-rule wall-clock durations in both
// engines. Under the parallel engine a rule's duration is the sum of the
// time its tasks spent across workers (with ElementSharding, the sum over
// all shards), so it measures CPU cost, not elapsed wall-clock time of
// the run.
package validate

import (
	"context"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"pgschema/internal/pg"
	"pgschema/internal/sched"
	"pgschema/internal/schema"
)

// SchedStats is the scheduler telemetry of one validation run — chunk
// counts, steals, per-worker busy/idle fractions, and the chunk-size
// histogram. It aliases the sched package's Stats so servers and CLIs
// can consume it without importing internal/sched.
type SchedStats = sched.Stats

// Rule identifies one satisfaction rule from Definitions 5.1–5.3.
type Rule string

// The rules, named as in the paper.
const (
	WS1 Rule = "WS1" // node properties must be of the required type
	WS2 Rule = "WS2" // edge properties must be of the required type
	WS3 Rule = "WS3" // target nodes must be of the required type
	WS4 Rule = "WS4" // non-list fields contain at most one edge

	DS1 Rule = "DS1" // @distinct: edges identified by nodes and label
	DS2 Rule = "DS2" // @noLoops: no loops
	DS3 Rule = "DS3" // @uniqueForTarget: at most one incoming edge
	DS4 Rule = "DS4" // @requiredForTarget: at least one incoming edge
	DS5 Rule = "DS5" // @required on attribute: property is required
	DS6 Rule = "DS6" // @required on relationship: edge is required
	DS7 Rule = "DS7" // @key: key properties identify nodes

	SS1 Rule = "SS1" // all nodes are justified
	SS2 Rule = "SS2" // all node properties are justified
	SS3 Rule = "SS3" // all edge properties are justified
	SS4 Rule = "SS4" // all edges are justified
)

// WeakRules are the rules of weak satisfaction (Definition 5.1).
var WeakRules = []Rule{WS1, WS2, WS3, WS4}

// DirectiveRules are the rules of directives satisfaction (Definition 5.2).
var DirectiveRules = []Rule{DS1, DS2, DS3, DS4, DS5, DS6, DS7}

// StrongOnlyRules are the additional rules of strong satisfaction
// (Definition 5.3).
var StrongOnlyRules = []Rule{SS1, SS2, SS3, SS4}

// AllRules lists every rule in paper order.
var AllRules = func() []Rule {
	var all []Rule
	all = append(all, WeakRules...)
	all = append(all, DirectiveRules...)
	all = append(all, StrongOnlyRules...)
	return all
}()

// Mode selects which satisfaction notion to check.
type Mode int

// The satisfaction modes.
const (
	// Strong checks strong satisfaction (Definition 5.3): all rules.
	Strong Mode = iota
	// Weak checks weak satisfaction only (Definition 5.1): WS1–WS4.
	Weak
	// Directives checks directives satisfaction only (Definition 5.2).
	Directives
)

// Violation is one reported failure of a rule. NodeID and EdgeID are -1
// when the violation does not concern a specific node or edge.
type Violation struct {
	Rule     Rule
	Message  string
	Node     pg.NodeID // primary node involved, or -1
	Edge     pg.EdgeID // primary edge involved, or -1
	TypeName string    // schema type involved, if any
	Field    string    // schema field involved, if any
	Property string    // property name involved, if any
}

// String renders the violation as "RULE: message".
func (v Violation) String() string { return string(v.Rule) + ": " + v.Message }

// Result is the outcome of a validation run.
type Result struct {
	Violations []Violation
	// Truncated reports that MaxViolations capped the run: at least one
	// violation beyond the reported ones exists in the graph. The
	// reported list is a canonically sorted subset — not a prefix — of
	// the full violation set. The sequential engine computes Truncated
	// exactly (it keeps scanning after the cap fills until it either
	// sees one more violation or exhausts the rules). The parallel
	// engine skips tasks not yet started once the cap is reached, so it
	// may report Truncated == false even though further violations
	// exist; Truncated == true is always trustworthy.
	Truncated bool
	// RuleTime holds per-rule durations when Options.CollectTimings was
	// set. Sequentially this is wall-clock time per rule; under the
	// parallel engine it is the summed task time per rule across
	// workers and shards (see the package comment).
	RuleTime map[Rule]time.Duration
	// Incomplete marks a partial result: the run's context was cancelled
	// before every element was checked. Violations found up to that
	// point are reported, but absence of a violation proves nothing.
	// An incomplete result must not seed Revalidate.
	Incomplete bool
	// Engine is the concrete engine that produced the result.
	Engine Engine
	// Workers is the resolved worker count the run used (after clamping
	// and autotuning); 1 means sequential.
	Workers int
	// Sched holds the run's scheduler telemetry when Options.SchedStats
	// was set and the fused engine ran (nil otherwise). Sequential runs
	// report Workers == 1 stats with zero steals.
	Sched *SchedStats
}

// OK reports whether no violations were found.
func (r *Result) OK() bool { return len(r.Violations) == 0 }

// ByRule groups the violations by rule.
func (r *Result) ByRule() map[Rule][]Violation {
	out := make(map[Rule][]Violation)
	for _, v := range r.Violations {
		out[v.Rule] = append(out[v.Rule], v)
	}
	return out
}

// Engine selects the evaluation strategy of a validation run.
type Engine int

// The engines.
const (
	// EngineAuto picks the fused engine, unless NaivePairScan demands
	// the rule-by-rule engine (the naive pair scans are rule-by-rule
	// implementations).
	EngineAuto Engine = iota
	// EngineRuleByRule runs one full node/edge sweep per rule — the
	// definitional shape, kept for differential testing and ablation.
	EngineRuleByRule
	// EngineFused runs one pass over the nodes and one pass over the
	// edges, evaluating every applicable rule per element against a
	// per-run resolution cache. DS4 and DS7 keep dedicated passes that
	// share the cache. The violation set is identical to
	// EngineRuleByRule (proven by the differential harness).
	EngineFused
)

// String names the engine as accepted by the server and CLI.
func (e Engine) String() string {
	switch e {
	case EngineRuleByRule:
		return "rule-by-rule"
	case EngineFused:
		return "fused"
	}
	return "auto"
}

// Options configures a validation run. The zero value checks strong
// satisfaction sequentially with unlimited violations.
type Options struct {
	Mode Mode
	// Rules restricts the run to the listed rules (intersected with the
	// rules of Mode). Nil means all rules of the mode.
	Rules []Rule
	// MaxViolations stops the run once this many violations have been
	// collected; 0 means unlimited.
	MaxViolations int
	// Workers enables the parallel engine when > 1. 0 normally means
	// sequential, but under EngineAuto a graph of at least
	// autotuneElements elements autotunes to GOMAXPROCS workers. The
	// value is clamped by EffectiveWorkers (floor 1, cap 8×GOMAXPROCS
	// and the graph's element count); negative values mean sequential.
	Workers int
	// ElementSharding makes the parallel engine split node iteration
	// across workers within a rule instead of running whole rules on
	// separate workers.
	ElementSharding bool
	// CollectTimings records per-rule durations (sequential engine).
	CollectTimings bool
	// SchedStats records chunk-scheduler telemetry (per-chunk wall time,
	// steal counts, per-worker busy fractions, chunk-size histogram)
	// into Result.Sched. Fused engine only; the telemetry needed for
	// adaptive chunking is collected by parallel runs regardless — this
	// flag only controls whether it is surfaced on the Result.
	SchedStats bool
	// NaivePairScan disables the adjacency-index implementations of
	// WS4/DS1/DS3 in favour of the textbook O(|E|²) pair scans from the
	// definitions. For the ablation benchmark only; it applies to the
	// rule-by-rule engine and makes EngineAuto resolve to it.
	NaivePairScan bool
	// Engine selects the evaluation strategy; EngineAuto (the zero
	// value) uses the fused engine.
	Engine Engine
	// Program supplies a validation program compiled from the schema by
	// Compile, letting repeated runs over the same (schema, graph) pair
	// skip recompilation and binding. Nil — or a program compiled from
	// a different schema than the one passed to Validate — compiles on
	// the fly, preserving the uncompiled behavior exactly. Only the
	// fused engine consults it.
	Program *Program
}

// ResolvedEngine reports the concrete engine the options select — what
// resolveEngine picks when Engine is EngineAuto. Callers (server, CLI)
// use it to report which engine produced a result.
func (o Options) ResolvedEngine() Engine { return o.resolveEngine() }

// autotuneElements is the graph size (nodes + edges, by ID bound) above
// which EngineAuto turns parallelism on by itself. Below it the
// scheduling overhead rivals the work and — more importantly — the
// sequential engine's exact Truncated semantics are worth keeping for
// interactive graph sizes.
const autotuneElements = 100_000

// EffectiveWorkers resolves Options.Workers to the worker count a
// Validate call over a graph with the given element count (node bound +
// edge bound) actually uses:
//
//   - Workers == 0 under EngineAuto on a graph of at least
//     autotuneElements elements autotunes to GOMAXPROCS — million-element
//     graphs parallelize without the caller having to know the machine;
//   - negative values and 0 otherwise mean sequential;
//   - values above 8×GOMAXPROCS are clamped (the generous factor keeps
//     deliberately oversubscribed test configurations exercising the
//     parallel code paths on small machines);
//   - the worker count never exceeds the element count (a worker with no
//     possible elements is pure overhead).
//
// 1 means the sequential engine. Servers and CLIs report this value so
// operators can see what an autotuned run actually did.
func (o Options) EffectiveWorkers(elements int) int {
	w := o.Workers
	if w == 0 && o.Engine == EngineAuto && !o.NaivePairScan && elements >= autotuneElements {
		w = runtime.GOMAXPROCS(0)
	}
	if w < 1 {
		w = 1
	}
	if cap := 8 * runtime.GOMAXPROCS(0); w > cap {
		w = cap
	}
	if elements > 0 && w > elements {
		w = elements
	}
	return w
}

// resolveEngine maps EngineAuto to a concrete engine.
func (o Options) resolveEngine() Engine {
	switch o.Engine {
	case EngineRuleByRule, EngineFused:
		return o.Engine
	}
	if o.NaivePairScan {
		return EngineRuleByRule
	}
	return EngineFused
}

func (o Options) rules() []Rule {
	var base []Rule
	switch o.Mode {
	case Weak:
		base = WeakRules
	case Directives:
		base = DirectiveRules
	default:
		base = AllRules
	}
	if o.Rules == nil {
		return base
	}
	want := make(map[Rule]bool, len(o.Rules))
	for _, r := range o.Rules {
		want[r] = true
	}
	var out []Rule
	for _, r := range base {
		if want[r] {
			out = append(out, r)
		}
	}
	return out
}

// Validate checks the graph against the schema and returns all violations
// found. The schema must have been built by schema.Build (and is assumed
// consistent, as the paper assumes in §4.3).
func Validate(s *schema.Schema, g *pg.Graph, opts Options) *Result {
	return ValidateContext(context.Background(), s, g, opts)
}

// ValidateContext is Validate under a context. Cancellation is observed
// at chunk-claim boundaries — between work chunks in the fused engine,
// between rules (or tasks) in the rule-by-rule engine — so a cancelled
// context stops the run before the next unit of work starts, never
// mid-element. The result of a cancelled run has Incomplete set and
// carries whatever violations were found before the stop.
func ValidateContext(ctx context.Context, s *schema.Schema, g *pg.Graph, opts Options) *Result {
	rules := opts.rules()
	// Resolve Workers once — clamped and, under EngineAuto on large
	// graphs, autotuned — so every engine below sees a sane count. An
	// autotuned count (Workers was 0) may be scaled back further below
	// once the program's measured parallel efficiency is known.
	origWorkers := opts.Workers
	opts.Workers = opts.EffectiveWorkers(g.NodeBound() + g.EdgeBound())
	engine := opts.resolveEngine()
	finish := func(res *Result, timings map[Rule]time.Duration) *Result {
		res.RuleTime = timings
		res.Engine = engine
		res.Workers = opts.Workers
		res.Incomplete = ctx.Err() != nil
		return res
	}
	c := newCollector(opts.MaxViolations)
	run := &runner{s: s, g: g, opts: opts, coll: c, ctx: ctx}
	if engine == EngineFused {
		p := opts.Program
		if p == nil || p.s != s {
			var err error
			p, err = CompileContext(ctx, s)
			if err != nil {
				return finish(&Result{}, nil)
			}
		}
		// Autotuned (not explicitly requested) worker counts consult the
		// program's measured parallel efficiency: on a machine where
		// parallel runs of this program never paid off — a single-core
		// container — fall back toward sequential instead of eating the
		// dispatch overhead again.
		if origWorkers == 0 && opts.Workers > 1 {
			opts.Workers = p.autotuneWorkers(opts.Workers)
			run.opts.Workers = opts.Workers
		}
		timings, st := run.fused(p, rules, c)
		res := finish(c.result(), timings)
		if opts.SchedStats {
			res.Sched = st
		}
		return res
	}
	if opts.Workers > 1 {
		timings := run.parallel(rules, c)
		return finish(c.result(), timings)
	}
	var timings map[Rule]time.Duration
	if opts.CollectTimings {
		timings = make(map[Rule]time.Duration, len(rules))
	}
	for _, r := range rules {
		// Keep scanning after the cap fills: the first rejected emit
		// proves a violation beyond the cap exists, which makes
		// Truncated exact in sequential mode.
		if c.truncated() || run.cancelled() {
			break
		}
		start := time.Now()
		run.runRule(r, c.emit, 0, 1)
		if timings != nil {
			timings[r] += time.Since(start)
		}
	}
	return finish(c.result(), timings)
}

// collector accumulates violations with an optional cap, safely across
// goroutines.
type collector struct {
	mu         sync.Mutex
	violations []Violation
	max        int
	overflow   bool // an emit was rejected: violations beyond max exist
}

func newCollector(max int) *collector { return &collector{max: max} }

func (c *collector) emit(v Violation) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max > 0 && len(c.violations) >= c.max {
		c.overflow = true
		return
	}
	c.violations = append(c.violations, v)
}

func (c *collector) full() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.max > 0 && len(c.violations) >= c.max
}

// dropFull reports whether the cap is already reached, flipping the
// overflow flag when it is. Rule bodies call it (via runner.drop) at
// the moment a violation is established but before formatting its
// message, so a full collector costs no fmt.Sprintf allocations:
// skipping the emit is equivalent to emitting and having the collector
// reject it, because the collector never shrinks.
func (c *collector) dropFull() bool {
	if c.max <= 0 {
		return false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.violations) >= c.max {
		c.overflow = true
		return true
	}
	return false
}

// merge splices a task-local violation buffer into the collector under
// a single lock. Buffered violations beyond the cap are dropped but
// still flip overflow, so a completed task never under-reports
// truncation (the cap contract the parallel engines rely on).
func (c *collector) merge(buf []Violation) {
	if len(buf) == 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.max > 0 {
		room := c.max - len(c.violations)
		if room < 0 {
			room = 0
		}
		if len(buf) > room {
			c.overflow = true
			buf = buf[:room]
		}
	}
	c.violations = append(c.violations, buf...)
}

// truncated reports whether an emit was rejected by the cap, i.e. the
// collected set is provably incomplete.
func (c *collector) truncated() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.overflow
}

func (c *collector) result() *Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	sort.Slice(c.violations, func(i, j int) bool {
		a, b := c.violations[i], c.violations[j]
		if a.Rule != b.Rule {
			return a.Rule < b.Rule
		}
		if a.Node != b.Node {
			return a.Node < b.Node
		}
		if a.Edge != b.Edge {
			return a.Edge < b.Edge
		}
		return a.Message < b.Message
	})
	return &Result{Violations: c.violations, Truncated: c.overflow}
}

// runner binds a schema and graph for one validation run. The optional
// restriction sets narrow the element space a rule iterates over — used
// by Revalidate to make incremental checking cheap; nil means "all".
type runner struct {
	s    *schema.Schema
	g    *pg.Graph
	opts Options

	// ctx is the run's context; nil means non-cancellable. Engines poll
	// cancelled() at chunk-claim boundaries only — never inside an
	// element loop — so cancellation cost stays off the hot path.
	ctx context.Context

	// bind is the compiled program bound to the graph, set by the fused
	// engine (and by RevalidateWithOptions when given a program). The
	// shared rule bodies (nodesOfType in particular) use it when
	// present; the rule-by-rule engine leaves it nil.
	bind *binding

	// coll is the run's collector, consulted by drop() to skip
	// formatting violations that a full collector would reject anyway.
	// Nil (Revalidate's restricted sweeps) means never drop.
	coll *collector

	onlyNodes map[pg.NodeID]bool
	onlyEdges map[pg.EdgeID]bool
	onlyTypes map[string]bool // restricts DS7 to related types
}

// drop reports whether the imminent violation should be skipped because
// the collector is already full. Callers must invoke it only once a
// violation is certain — it flips the Truncated flag.
func (r *runner) drop() bool { return r.coll != nil && r.coll.dropFull() }

// cancelled reports whether the run's context has been cancelled.
func (r *runner) cancelled() bool { return r.ctx != nil && r.ctx.Err() != nil }

// nodes returns the node iteration space under the restriction.
func (r *runner) nodes() []pg.NodeID {
	if r.onlyNodes == nil {
		return r.g.Nodes()
	}
	out := make([]pg.NodeID, 0, len(r.onlyNodes))
	for _, id := range r.g.Nodes() {
		if r.onlyNodes[id] {
			out = append(out, id)
		}
	}
	return out
}

// edges returns the edge iteration space under the restriction.
func (r *runner) edges() []pg.EdgeID {
	if r.onlyEdges == nil {
		return r.g.Edges()
	}
	out := make([]pg.EdgeID, 0, len(r.onlyEdges))
	for _, id := range r.g.Edges() {
		if r.onlyEdges[id] {
			out = append(out, id)
		}
	}
	return out
}

// typeAllowed reports whether DS7 should consider the type under the
// restriction (a type is relevant when an affected label is ⊑ it).
func (r *runner) typeAllowed(name string) bool {
	if r.onlyTypes == nil {
		return true
	}
	for label := range r.onlyTypes {
		if r.s.SubtypeNamed(label, name) {
			return true
		}
	}
	return false
}

type emitFunc func(Violation)

// runRule evaluates one rule over the shard [shard, nShards) of the
// element space (sharding applies to the outer node/edge loop).
func (r *runner) runRule(rule Rule, emit emitFunc, shard, nShards int) {
	switch rule {
	case WS1:
		r.ws1(emit, shard, nShards)
	case WS2:
		r.ws2(emit, shard, nShards)
	case WS3:
		r.ws3(emit, shard, nShards)
	case WS4:
		r.ws4(emit, shard, nShards)
	case DS1:
		r.ds1(emit, shard, nShards)
	case DS2:
		r.ds2(emit, shard, nShards)
	case DS3:
		r.ds3(emit, shard, nShards)
	case DS4:
		r.ds4(emit, shard, nShards)
	case DS5:
		r.ds5(emit, shard, nShards)
	case DS6:
		r.ds6(emit, shard, nShards)
	case DS7:
		r.ds7(emit, shard, nShards)
	case SS1:
		r.ss1(emit, shard, nShards)
	case SS2:
		r.ss2(emit, shard, nShards)
	case SS3:
		r.ss3(emit, shard, nShards)
	case SS4:
		r.ss4(emit, shard, nShards)
	}
}

// parallel runs the rules on a worker pool, either one rule per task or —
// with ElementSharding — one (rule, shard) pair per task. When
// Options.CollectTimings is set it returns the per-rule task durations,
// summed across workers and shards; otherwise it returns nil.
func (r *runner) parallel(rules []Rule, c *collector) map[Rule]time.Duration {
	type task struct {
		rule           Rule
		shard, nShards int
	}
	var tasks []task
	if r.opts.ElementSharding {
		n := r.opts.Workers
		for _, rule := range rules {
			if rule == DS7 {
				// DS7 buckets nodes globally; shards would each
				// need the full bucket map, so keep it whole.
				tasks = append(tasks, task{rule, 0, 1})
				continue
			}
			for s := 0; s < n; s++ {
				tasks = append(tasks, task{rule, s, n})
			}
		}
	} else {
		for _, rule := range rules {
			tasks = append(tasks, task{rule, 0, 1})
		}
	}
	var (
		timingMu sync.Mutex
		timings  map[Rule]time.Duration
	)
	if r.opts.CollectTimings {
		timings = make(map[Rule]time.Duration, len(rules))
		for _, rule := range rules {
			timings[rule] = 0 // every requested rule gets an entry
		}
	}
	ch := make(chan task)
	var wg sync.WaitGroup
	for w := 0; w < r.opts.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range ch {
				// Tasks not yet started are skipped once the cap is
				// reached or the context is cancelled; a started task
				// runs to completion and merges its buffer, so overflow
				// among completed tasks is never lost (see
				// collector.merge). Cancelled workers keep draining the
				// channel so the feeder below never blocks.
				if c.full() || r.cancelled() {
					continue
				}
				bufp := violationBufPool.Get().(*[]Violation)
				buf := (*bufp)[:0]
				emit := func(v Violation) { buf = append(buf, v) }
				start := time.Now()
				r.runRule(t.rule, emit, t.shard, t.nShards)
				elapsed := time.Since(start)
				c.merge(buf)
				*bufp = buf[:0]
				violationBufPool.Put(bufp)
				if timings != nil {
					timingMu.Lock()
					timings[t.rule] += elapsed
					timingMu.Unlock()
				}
			}
		}()
	}
	for _, t := range tasks {
		ch <- t
	}
	close(ch)
	wg.Wait()
	return timings
}

// nodeShard reports whether node id belongs to the shard.
func nodeShard(id pg.NodeID, shard, nShards int) bool {
	return nShards <= 1 || int(id)%nShards == shard
}

// edgeShard reports whether edge id belongs to the shard.
func edgeShard(id pg.EdgeID, shard, nShards int) bool {
	return nShards <= 1 || int(id)%nShards == shard
}

// violationBufPool recycles the task-local violation buffers of the
// parallel engines, so a task on a violation-free shard costs no buffer
// allocation and a violating task reuses a previously grown buffer.
var violationBufPool = sync.Pool{New: func() any { return new([]Violation) }}

func nodeRef(id pg.NodeID) string { return "node n" + strconv.Itoa(int(id)) }

func edgeRef(id pg.EdgeID) string { return "edge e" + strconv.Itoa(int(id)) }
