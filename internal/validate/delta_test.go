package validate

import (
	"context"
	"math/rand"
	"testing"

	"pgschema/internal/pg"
	"pgschema/internal/values"
)

// applyRandomMutation mutates the graph and returns the delta that
// describes it.
func applyRandomMutation(g *pg.Graph, rnd *rand.Rand) Delta {
	var d Delta
	nodes := g.Nodes()
	labels := []string{"Author", "Book", "BookSeries", "Publisher", "Ghost"}
	switch rnd.Intn(8) {
	case 0: // add node
		n := g.AddNode(labels[rnd.Intn(len(labels))])
		d.Nodes = append(d.Nodes, n)
	case 1: // add edge
		if len(nodes) >= 2 {
			src := nodes[rnd.Intn(len(nodes))]
			dst := nodes[rnd.Intn(len(nodes))]
			names := []string{"favoriteBook", "relatedAuthor", "author", "contains", "published", "bogus"}
			e := g.MustAddEdge(src, dst, names[rnd.Intn(len(names))])
			d.Edges = append(d.Edges, e)
		}
	case 2: // remove an edge
		if edges := g.Edges(); len(edges) > 0 {
			e := edges[rnd.Intn(len(edges))]
			d.Edges = append(d.Edges, e)
			g.RemoveEdge(e)
		}
	case 3: // set a property
		if len(nodes) > 0 {
			n := nodes[rnd.Intn(len(nodes))]
			props := []string{"title", "name", "bogus"}
			vals := []values.Value{values.String("x"), values.Int(3), values.List(values.Null)}
			g.SetNodeProp(n, props[rnd.Intn(len(props))], vals[rnd.Intn(len(vals))])
			d.Nodes = append(d.Nodes, n)
		}
	case 4: // delete a property
		if len(nodes) > 0 {
			n := nodes[rnd.Intn(len(nodes))]
			g.DeleteNodeProp(n, "title")
			g.DeleteNodeProp(n, "name")
			d.Nodes = append(d.Nodes, n)
		}
	case 5: // relabel
		if len(nodes) > 0 {
			n := nodes[rnd.Intn(len(nodes))]
			old := g.NodeLabel(n)
			g.SetNodeLabel(n, labels[rnd.Intn(len(labels))])
			d.Nodes = append(d.Nodes, n)
			d.Labels = append(d.Labels, old)
		}
	case 6: // remove a node
		if len(nodes) > 0 {
			n := nodes[rnd.Intn(len(nodes))]
			// Neighbours' constraints change: record them.
			for _, e := range g.OutEdges(n) {
				d.Edges = append(d.Edges, e)
			}
			for _, e := range g.InEdges(n) {
				d.Edges = append(d.Edges, e)
			}
			d.Nodes = append(d.Nodes, n)
			g.RemoveNode(n)
		}
	case 7: // set an edge property
		if edges := g.Edges(); len(edges) > 0 {
			e := edges[rnd.Intn(len(edges))]
			g.SetEdgeProp(e, "bogusEdgeProp", values.Int(1))
			d.Edges = append(d.Edges, e)
		}
	}
	return d
}

// TestRevalidateEquivalence is the core delta property: after any
// mutation sequence, Revalidate from the previous result equals a full
// re-validation.
func TestRevalidateEquivalence(t *testing.T) {
	s := build(t, bookSchema+`
		type Keyed @key(fields: ["k"]) { k: ID! @required }`)
	for seed := int64(0); seed < 25; seed++ {
		rnd := rand.New(rand.NewSource(seed))
		g := bookGraph()
		for i := 0; i < 4; i++ {
			k := g.AddNode("Keyed")
			g.SetNodeProp(k, "k", values.ID(string(rune('a'+i))))
		}
		prev := Validate(s, g, Options{})
		for step := 0; step < 12; step++ {
			delta := applyRandomMutation(g, rnd)
			got := Revalidate(context.Background(), s, g, prev, delta, Options{})
			want := Validate(s, g, Options{})
			if len(got.Violations) != len(want.Violations) {
				t.Fatalf("seed %d step %d: incremental %d vs full %d violations\nincremental: %v\nfull: %v",
					seed, step, len(got.Violations), len(want.Violations), got.Violations, want.Violations)
			}
			for i := range want.Violations {
				if got.Violations[i] != want.Violations[i] {
					t.Fatalf("seed %d step %d: violation %d differs:\nincremental: %v\nfull:        %v",
						seed, step, i, got.Violations[i], want.Violations[i])
				}
			}
			prev = got
		}
	}
}

func TestRevalidateEmptyDelta(t *testing.T) {
	s := build(t, bookSchema)
	g := bookGraph()
	prev := Validate(s, g, Options{})
	got := Revalidate(context.Background(), s, g, prev, Delta{}, Options{})
	if len(got.Violations) != len(prev.Violations) {
		t.Errorf("empty delta changed the result: %v", got.Violations)
	}
}

func TestRevalidateDetectsNewViolation(t *testing.T) {
	s := build(t, bookSchema)
	g := bookGraph()
	prev := Validate(s, g, Options{})
	if !prev.OK() {
		t.Fatalf("baseline: %v", prev.Violations)
	}
	a := g.NodesLabeled("Author")[0]
	e := g.MustAddEdge(a, a, "relatedAuthor") // DS2 loop
	got := Revalidate(context.Background(), s, g, prev, Delta{Edges: []pg.EdgeID{e}}, Options{})
	if len(got.Violations) != 1 || got.Violations[0].Rule != DS2 {
		t.Errorf("incremental result: %v", got.Violations)
	}
}

func TestRevalidateClearsFixedViolation(t *testing.T) {
	s := build(t, sessionSchema)
	g := sessionGraph()
	u := g.NodesLabeled("User")[0]
	g.DeleteNodeProp(u, "login") // login is @required
	prev := Validate(s, g, Options{})
	if len(prev.Violations) != 1 || prev.Violations[0].Rule != DS5 {
		t.Fatalf("setup: %v", prev.Violations)
	}
	g.SetNodeProp(u, "login", values.String("restored"))
	got := Revalidate(context.Background(), s, g, prev, Delta{Nodes: []pg.NodeID{u}}, Options{})
	if !got.OK() {
		t.Errorf("fixed violation still reported: %v", got.Violations)
	}
}
