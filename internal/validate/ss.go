package validate

import (
	"fmt"

	"pgschema/internal/schema"
)

// ss1 — SS1 (all nodes are justified): for all v ∈ V, λ(v) ∈ OT.
func (r *runner) ss1(emit emitFunc, shard, nShards int) {
	for _, v := range r.nodes() {
		if !nodeShard(v, shard, nShards) {
			continue
		}
		label := r.g.NodeLabel(v)
		td := r.s.Type(label)
		if (td == nil || td.Kind != schema.Object) && !r.drop() {
			emit(Violation{
				Rule: SS1, Node: v, Edge: -1, TypeName: label,
				Message: fmt.Sprintf("%s: label %q is not an object type of the schema", nodeRef(v), label),
			})
		}
	}
}

// ss2 — SS2 (all node properties are justified): for all (v, f) ∈ dom(σ)
// with v ∈ V, f ∈ fieldsS(λ(v)) and typeF(λ(v), f) ∈ S ∪ WS.
func (r *runner) ss2(emit emitFunc, shard, nShards int) {
	for _, v := range r.nodes() {
		if !nodeShard(v, shard, nShards) {
			continue
		}
		label := r.g.NodeLabel(v)
		td := r.s.Type(label)
		for _, name := range r.g.NodePropNames(v) {
			var fd *schema.FieldDef
			if td != nil {
				fd = td.Field(name)
			}
			if fd == nil {
				if !r.drop() {
					emit(Violation{
						Rule: SS2, Node: v, Edge: -1, TypeName: label, Property: name,
						Message: fmt.Sprintf("%s (%s): property %q is not declared as a field of %s", nodeRef(v), label, name, label),
					})
				}
				continue
			}
			if !r.s.IsAttribute(fd) && !r.drop() {
				emit(Violation{
					Rule: SS2, Node: v, Edge: -1, TypeName: label, Field: name, Property: name,
					Message: fmt.Sprintf("%s (%s): property %q corresponds to relationship field %s.%s of type %s, not an attribute",
						nodeRef(v), label, name, label, name, fd.Type),
				})
			}
		}
	}
}

// ss3 — SS3 (all edge properties are justified): for all (e, a) ∈ dom(σ)
// with ρ(e) = (v1, v2), a ∈ argsS((λ(v1), λ(e))).
func (r *runner) ss3(emit emitFunc, shard, nShards int) {
	for _, e := range r.edges() {
		if !edgeShard(e, shard, nShards) {
			continue
		}
		props := r.g.EdgePropNames(e)
		if len(props) == 0 {
			continue
		}
		src, _ := r.g.Endpoints(e)
		srcLabel := r.g.NodeLabel(src)
		fd := r.s.Field(srcLabel, r.g.EdgeLabel(e))
		for _, name := range props {
			if (fd == nil || fd.Arg(name) == nil) && !r.drop() {
				emit(Violation{
					Rule: SS3, Node: src, Edge: e, TypeName: srcLabel, Field: r.g.EdgeLabel(e), Property: name,
					Message: fmt.Sprintf("%s (%s): property %q is not a declared argument of %s.%s",
						edgeRef(e), r.g.EdgeLabel(e), name, srcLabel, r.g.EdgeLabel(e)),
				})
			}
		}
	}
}

// ss4 — SS4 (all edges are justified): for all e ∈ E with ρ(e) = (v1, v2),
// λ(e) ∈ fieldsS(λ(v1)) and typeF(λ(v1), λ(e)) ∉ S ∪ WS.
func (r *runner) ss4(emit emitFunc, shard, nShards int) {
	for _, e := range r.edges() {
		if !edgeShard(e, shard, nShards) {
			continue
		}
		src, _ := r.g.Endpoints(e)
		srcLabel := r.g.NodeLabel(src)
		elabel := r.g.EdgeLabel(e)
		fd := r.s.Field(srcLabel, elabel)
		if fd == nil {
			if !r.drop() {
				emit(Violation{
					Rule: SS4, Node: src, Edge: e, TypeName: srcLabel, Field: elabel,
					Message: fmt.Sprintf("%s: label %q is not a declared field of %s", edgeRef(e), elabel, srcLabel),
				})
			}
			continue
		}
		if r.s.IsAttribute(fd) && !r.drop() {
			emit(Violation{
				Rule: SS4, Node: src, Edge: e, TypeName: srcLabel, Field: elabel,
				Message: fmt.Sprintf("%s: label %q corresponds to attribute field %s.%s of type %s, not a relationship",
					edgeRef(e), elabel, srcLabel, elabel, fd.Type),
			})
		}
	}
}
