package validate

import (
	"runtime"
	"testing"
)

// TestEffectiveWorkers pins the Workers resolution contract: explicit
// values are clamped, zero means "autotune under EngineAuto on big
// graphs, sequential otherwise", and the result never exceeds the
// element count or 8×GOMAXPROCS.
func TestEffectiveWorkers(t *testing.T) {
	procs := runtime.GOMAXPROCS(0)
	hard := 8 * procs
	cases := []struct {
		name     string
		opts     Options
		elements int
		want     int
	}{
		{"negative clamps to one", Options{Workers: -3}, 1000, 1},
		{"zero stays sequential on small graphs", Options{}, autotuneElements - 1, 1},
		{"zero autotunes to GOMAXPROCS at scale", Options{}, autotuneElements, procs},
		{"explicit value is kept", Options{Workers: 2}, autotuneElements, 2},
		{"explicit value capped at 8x GOMAXPROCS", Options{Workers: 10 * hard}, 10_000_000, hard},
		{"never more workers than elements", Options{Workers: 64}, 3, 3},
		{"zero elements skips the element cap", Options{Workers: 4}, 0, 4},
		{"explicit engine disables autotune", Options{Engine: EngineFused}, autotuneElements, 1},
		{"naive pair scan disables autotune", Options{NaivePairScan: true}, autotuneElements, 1},
	}
	for _, tc := range cases {
		if got := tc.opts.EffectiveWorkers(tc.elements); got != tc.want {
			t.Errorf("%s: EffectiveWorkers(%d) = %d, want %d", tc.name, tc.elements, got, tc.want)
		}
	}
}
