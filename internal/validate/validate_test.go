package validate

import (
	"testing"

	"pgschema/internal/parser"
	"pgschema/internal/pg"
	"pgschema/internal/schema"
	"pgschema/internal/values"
)

func build(t *testing.T, src string) *schema.Schema {
	t.Helper()
	doc, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	s, err := schema.Build(doc, schema.Options{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return s
}

// check validates and asserts the exact multiset of violated rules.
func check(t *testing.T, s *schema.Schema, g *pg.Graph, opts Options, want ...Rule) *Result {
	t.Helper()
	res := Validate(s, g, opts)
	counts := make(map[Rule]int)
	for _, v := range res.Violations {
		counts[v.Rule]++
	}
	wantCounts := make(map[Rule]int)
	for _, r := range want {
		wantCounts[r]++
	}
	for r, n := range wantCounts {
		if counts[r] != n {
			t.Errorf("rule %s: got %d violations, want %d\nall: %v", r, counts[r], n, res.Violations)
		}
	}
	for r, n := range counts {
		if wantCounts[r] == 0 {
			t.Errorf("unexpected %s violations (%d)\nall: %v", r, n, res.Violations)
		}
	}
	return res
}

const sessionSchema = `
type UserSession {
	id: ID! @required
	user: User! @required
	startTime: Time! @required
	endTime: Time!
}
type User {
	id: ID! @required
	login: String! @required
	nicknames: [String!]!
}
scalar Time`

// sessionGraph builds the conformant graph described in Examples 3.3/3.5.
func sessionGraph() *pg.Graph {
	g := pg.New()
	u := g.AddNode("User")
	g.SetNodeProp(u, "id", values.ID("u1"))
	g.SetNodeProp(u, "login", values.String("ada"))
	g.SetNodeProp(u, "nicknames", values.List(values.String("lovelace")))
	s := g.AddNode("UserSession")
	g.SetNodeProp(s, "id", values.ID("s1"))
	g.SetNodeProp(s, "startTime", values.String("2019-06-30T09:00:00Z"))
	g.MustAddEdge(s, u, "user")
	return g
}

func TestConformantGraph(t *testing.T) {
	s := build(t, sessionSchema)
	res := check(t, s, sessionGraph(), Options{})
	if !res.OK() {
		t.Errorf("expected OK, got %v", res.Violations)
	}
}

func TestEmptyGraphStronglySatisfies(t *testing.T) {
	// The empty Property Graph strongly satisfies any consistent schema
	// in which no @requiredForTarget forces population (vacuously).
	s := build(t, sessionSchema)
	check(t, s, pg.New(), Options{})
}

func TestWS1PropertyWrongType(t *testing.T) {
	s := build(t, sessionSchema)
	g := sessionGraph()
	u := g.NodesLabeled("User")[0]
	g.SetNodeProp(u, "login", values.Int(42)) // login: String!
	check(t, s, g, Options{}, WS1)
}

func TestWS1NullForNonNull(t *testing.T) {
	s := build(t, sessionSchema)
	g := sessionGraph()
	u := g.NodesLabeled("User")[0]
	g.SetNodeProp(u, "login", values.Null) // String! excludes null
	check(t, s, g, Options{}, WS1)
}

func TestWS1ListElementWrongType(t *testing.T) {
	s := build(t, sessionSchema)
	g := sessionGraph()
	u := g.NodesLabeled("User")[0]
	g.SetNodeProp(u, "nicknames", values.List(values.String("ok"), values.Int(3)))
	check(t, s, g, Options{}, WS1)
}

func TestWS1ListWithNullElement(t *testing.T) {
	s := build(t, sessionSchema)
	g := sessionGraph()
	u := g.NodesLabeled("User")[0]
	g.SetNodeProp(u, "nicknames", values.List(values.Null)) // [String!]!
	check(t, s, g, Options{}, WS1)
}

func TestWS1CustomScalarAcceptsAnything(t *testing.T) {
	s := build(t, sessionSchema)
	g := sessionGraph()
	sess := g.NodesLabeled("UserSession")[0]
	g.SetNodeProp(sess, "endTime", values.Int(1561900000))
	check(t, s, g, Options{})
}

const edgePropSchema = `
type UserSession {
	user(certainty: Float! comment: String): User! @required
}
type User { id: ID! }`

func TestWS2EdgeProperties(t *testing.T) {
	// Example 3.12: certainty is mandatory (checked by WS2 only when
	// present — absence is not a WS2 violation since valuesW is only
	// checked for properties in dom(σ)).
	s := build(t, edgePropSchema)
	g := pg.New()
	u := g.AddNode("User")
	sess := g.AddNode("UserSession")
	e := g.MustAddEdge(sess, u, "user")
	g.SetEdgeProp(e, "certainty", values.Float(0.9))
	g.SetEdgeProp(e, "comment", values.String("fine"))
	check(t, s, g, Options{})

	g.SetEdgeProp(e, "certainty", values.String("high"))
	check(t, s, g, Options{}, WS2)
}

func TestWS2NullForNonNullArg(t *testing.T) {
	s := build(t, edgePropSchema)
	g := pg.New()
	u := g.AddNode("User")
	sess := g.AddNode("UserSession")
	e := g.MustAddEdge(sess, u, "user")
	g.SetEdgeProp(e, "certainty", values.Null)
	check(t, s, g, Options{}, WS2)
}

func TestWS3WrongTargetType(t *testing.T) {
	s := build(t, sessionSchema)
	g := sessionGraph()
	sess := g.NodesLabeled("UserSession")[0]
	other := g.AddNode("UserSession")
	g.SetNodeProp(other, "id", values.ID("s2"))
	g.SetNodeProp(other, "startTime", values.String("t"))
	g.MustAddEdge(other, sess, "user") // user must point at a User
	check(t, s, g, Options{}, WS3)
}

func TestWS3InterfaceTarget(t *testing.T) {
	// Example 3.10: favoriteFood points at the interface Food; Pizza and
	// Pasta nodes are fine, Person nodes are not.
	s := build(t, `
		type Person { name: String! favoriteFood: Food }
		interface Food { name: String! }
		type Pizza implements Food { name: String! toppings: [String!]! }
		type Pasta implements Food { name: String! }`)
	g := pg.New()
	p := g.AddNode("Person")
	g.SetNodeProp(p, "name", values.String("olaf"))
	pizza := g.AddNode("Pizza")
	g.SetNodeProp(pizza, "name", values.String("margherita"))
	g.SetNodeProp(pizza, "toppings", values.List(values.String("basil")))
	g.MustAddEdge(p, pizza, "favoriteFood")
	check(t, s, g, Options{})

	p2 := g.AddNode("Person")
	g.SetNodeProp(p2, "name", values.String("jan"))
	g.MustAddEdge(p2, p, "favoriteFood") // Person is not ⊑ Food
	check(t, s, g, Options{}, WS3)
}

func TestWS3UnionTarget(t *testing.T) {
	// Example 3.9: the union variant must behave identically.
	s := build(t, `
		type Person { name: String! favoriteFood: Food }
		union Food = Pizza | Pasta
		type Pizza { name: String! toppings: [String!]! }
		type Pasta { name: String! }`)
	g := pg.New()
	p := g.AddNode("Person")
	g.SetNodeProp(p, "name", values.String("olaf"))
	pasta := g.AddNode("Pasta")
	g.SetNodeProp(pasta, "name", values.String("carbonara"))
	g.MustAddEdge(p, pasta, "favoriteFood")
	check(t, s, g, Options{})

	p2 := g.AddNode("Person")
	g.SetNodeProp(p2, "name", values.String("jan"))
	g.MustAddEdge(p2, p, "favoriteFood")
	check(t, s, g, Options{}, WS3)
}

func TestWS4MultipleEdgesOnNonListField(t *testing.T) {
	// Example 3.5: a UserSession must have exactly one user edge.
	s := build(t, sessionSchema)
	g := sessionGraph()
	sess := g.NodesLabeled("UserSession")[0]
	u2 := g.AddNode("User")
	g.SetNodeProp(u2, "id", values.ID("u2"))
	g.SetNodeProp(u2, "login", values.String("bob"))
	g.MustAddEdge(sess, u2, "user")
	check(t, s, g, Options{}, WS4)
}

func TestWS4ListFieldAllowsMany(t *testing.T) {
	// Example 3.6: relatedAuthor: [Author] allows any number of edges.
	s := build(t, `
		type Author { favoriteBook: Book relatedAuthor: [Author] }
		type Book { title: String! author: [Author] @required }`)
	g := pg.New()
	a1, a2, a3 := g.AddNode("Author"), g.AddNode("Author"), g.AddNode("Author")
	g.MustAddEdge(a1, a2, "relatedAuthor")
	g.MustAddEdge(a1, a3, "relatedAuthor")
	check(t, s, g, Options{})

	// But favoriteBook (non-list) allows at most one.
	b1, b2 := g.AddNode("Book"), g.AddNode("Book")
	for _, b := range []pg.NodeID{b1, b2} {
		g.SetNodeProp(b, "title", values.String("t"))
		g.MustAddEdge(b, a1, "author")
	}
	g.MustAddEdge(a1, b1, "favoriteBook")
	g.MustAddEdge(a1, b2, "favoriteBook")
	check(t, s, g, Options{}, WS4)
}

const bookSchema = `
type Author {
	favoriteBook: Book
	relatedAuthor: [Author] @distinct @noLoops
}
type Book {
	title: String!
	author: [Author] @required @distinct
}
type BookSeries {
	contains: [Book] @required @uniqueForTarget
}
type Publisher {
	published: [Book] @uniqueForTarget @requiredForTarget
}`

// bookGraph builds a graph conforming to bookSchema.
func bookGraph() *pg.Graph {
	g := pg.New()
	a := g.AddNode("Author")
	b := g.AddNode("Book")
	g.SetNodeProp(b, "title", values.String("On Schemas"))
	g.MustAddEdge(b, a, "author")
	p := g.AddNode("Publisher")
	g.MustAddEdge(p, b, "published")
	return g
}

func TestBookGraphConformant(t *testing.T) {
	s := build(t, bookSchema)
	check(t, s, bookGraph(), Options{})
}

func TestDS1Distinct(t *testing.T) {
	// Example 3.7: two author edges to the same Author violate @distinct.
	s := build(t, bookSchema)
	g := bookGraph()
	b := g.NodesLabeled("Book")[0]
	a := g.NodesLabeled("Author")[0]
	g.MustAddEdge(b, a, "author")
	check(t, s, g, Options{}, DS1)
}

func TestDS1DistinctDifferentTargetsOK(t *testing.T) {
	s := build(t, bookSchema)
	g := bookGraph()
	b := g.NodesLabeled("Book")[0]
	a2 := g.AddNode("Author")
	g.MustAddEdge(b, a2, "author")
	check(t, s, g, Options{})
}

func TestDS2NoLoops(t *testing.T) {
	s := build(t, bookSchema)
	g := bookGraph()
	a := g.NodesLabeled("Author")[0]
	g.MustAddEdge(a, a, "relatedAuthor")
	check(t, s, g, Options{}, DS2)
}

func TestDS2NonLoopOK(t *testing.T) {
	s := build(t, bookSchema)
	g := bookGraph()
	a := g.NodesLabeled("Author")[0]
	a2 := g.AddNode("Author")
	g.MustAddEdge(a, a2, "relatedAuthor")
	g.MustAddEdge(a2, a, "relatedAuthor") // mutual, but no loop
	check(t, s, g, Options{})
}

func TestDS3UniqueForTarget(t *testing.T) {
	// Example 3.8: a Book may have at most one incoming contains edge.
	s := build(t, bookSchema)
	g := bookGraph()
	b := g.NodesLabeled("Book")[0]
	s1, s2 := g.AddNode("BookSeries"), g.AddNode("BookSeries")
	g.MustAddEdge(s1, b, "contains")
	g.MustAddEdge(s2, b, "contains")
	check(t, s, g, Options{}, DS3)
}

func TestDS3SingleIncomingOK(t *testing.T) {
	s := build(t, bookSchema)
	g := bookGraph()
	b := g.NodesLabeled("Book")[0]
	s1 := g.AddNode("BookSeries")
	g.MustAddEdge(s1, b, "contains")
	check(t, s, g, Options{})
}

func TestDS4RequiredForTarget(t *testing.T) {
	// Example 3.8: every Book must have exactly one incoming published
	// edge; a Book without one violates DS4.
	s := build(t, bookSchema)
	g := bookGraph()
	b2 := g.AddNode("Book")
	g.SetNodeProp(b2, "title", values.String("Orphan"))
	a := g.NodesLabeled("Author")[0]
	g.MustAddEdge(b2, a, "author")
	check(t, s, g, Options{}, DS4)
}

func TestDS5RequiredProperty(t *testing.T) {
	s := build(t, sessionSchema)
	g := sessionGraph()
	u := g.NodesLabeled("User")[0]
	g.DeleteNodeProp(u, "login")
	check(t, s, g, Options{}, DS5)
}

func TestDS5OptionalPropertyMayBeAbsent(t *testing.T) {
	// endTime has no @required; absence is fine (Example 3.3).
	s := build(t, sessionSchema)
	g := sessionGraph()
	sess := g.NodesLabeled("UserSession")[0]
	g.DeleteNodeProp(sess, "endTime")
	check(t, s, g, Options{})
}

func TestDS5RequiredListNonempty(t *testing.T) {
	s := build(t, `
		type User {
			tags: [String!] @required
		}`)
	g := pg.New()
	u := g.AddNode("User")
	g.SetNodeProp(u, "tags", values.List())
	check(t, s, g, Options{}, DS5)
	g.SetNodeProp(u, "tags", values.List(values.String("x")))
	check(t, s, g, Options{})
}

func TestDS6RequiredEdge(t *testing.T) {
	// Example 3.5/3.6: a Book without an author edge violates @required.
	s := build(t, bookSchema)
	g := bookGraph()
	b2 := g.AddNode("Book")
	g.SetNodeProp(b2, "title", values.String("No author"))
	p := g.NodesLabeled("Publisher")[0]
	g.MustAddEdge(p, b2, "published")
	check(t, s, g, Options{}, DS6)
}

const keySchema = `
type User @key(fields: ["id"]) {
	id: ID! @required
	login: String!
}`

func TestDS7KeyViolated(t *testing.T) {
	s := build(t, keySchema)
	g := pg.New()
	for _, id := range []string{"u1", "u1"} {
		u := g.AddNode("User")
		g.SetNodeProp(u, "id", values.ID(id))
	}
	check(t, s, g, Options{}, DS7)
}

func TestDS7KeySatisfied(t *testing.T) {
	s := build(t, keySchema)
	g := pg.New()
	for _, id := range []string{"u1", "u2"} {
		u := g.AddNode("User")
		g.SetNodeProp(u, "id", values.ID(id))
	}
	check(t, s, g, Options{})
}

func TestDS7BothAbsentConflicts(t *testing.T) {
	// DS7 case (i): two nodes both lacking the key property agree on it.
	s := build(t, keySchema)
	g := pg.New()
	g.AddNode("User")
	g.AddNode("User")
	// Missing @required id triggers DS5 too; both are correct.
	check(t, s, g, Options{}, DS7, DS5, DS5)
}

func TestDS7CompositeKey(t *testing.T) {
	s := build(t, `
		type Point @key(fields: ["x", "y"]) {
			x: Int @required
			y: Int @required
		}`)
	g := pg.New()
	add := func(x, y int64) {
		p := g.AddNode("Point")
		g.SetNodeProp(p, "x", values.Int(x))
		g.SetNodeProp(p, "y", values.Int(y))
	}
	add(1, 2)
	add(1, 3)
	add(2, 2)
	check(t, s, g, Options{})
	add(1, 2)
	check(t, s, g, Options{}, DS7)
}

func TestDS7MultipleKeys(t *testing.T) {
	// Example 3.4: both id and login are keys, independently.
	s := build(t, `
		type User @key(fields: ["id"]) @key(fields: ["login"]) {
			id: ID! @required
			login: String! @required
		}`)
	g := pg.New()
	add := func(id, login string) {
		u := g.AddNode("User")
		g.SetNodeProp(u, "id", values.ID(id))
		g.SetNodeProp(u, "login", values.String(login))
	}
	add("u1", "ada")
	add("u2", "bob")
	check(t, s, g, Options{})
	add("u3", "ada") // distinct id, duplicate login
	check(t, s, g, Options{}, DS7)
}

func TestSS1UnknownLabel(t *testing.T) {
	s := build(t, sessionSchema)
	g := sessionGraph()
	g.AddNode("Ghost")
	check(t, s, g, Options{}, SS1)
}

func TestSS1InterfaceLabelNotJustified(t *testing.T) {
	// SS1 demands λ(v) ∈ OT: interface and union labels are not node
	// types (§3.4: "we do not use these notions as types that can be
	// explicitly assigned to nodes").
	s := build(t, `
		interface Food { name: String! }
		type Pizza implements Food { name: String! }
		union Meal = Pizza`)
	g := pg.New()
	g.AddNode("Food")
	g.AddNode("Meal")
	n := g.AddNode("Pizza")
	g.SetNodeProp(n, "name", values.String("ok"))
	// Food/Meal nodes: SS1; their properties: none; fine.
	check(t, s, g, Options{}, SS1, SS1)
}

func TestSS1ScalarLabel(t *testing.T) {
	s := build(t, sessionSchema)
	g := sessionGraph()
	g.AddNode("Time") // scalar name is not an object type
	check(t, s, g, Options{}, SS1)
}

func TestSS2UndeclaredProperty(t *testing.T) {
	s := build(t, sessionSchema)
	g := sessionGraph()
	u := g.NodesLabeled("User")[0]
	g.SetNodeProp(u, "age", values.Int(36))
	check(t, s, g, Options{}, SS2)
}

func TestSS2PropertyNamedLikeRelationship(t *testing.T) {
	// A node property named like a relationship field is unjustified:
	// typeF(λ(v), f) ∉ S ∪ WS.
	s := build(t, sessionSchema)
	g := sessionGraph()
	sess := g.NodesLabeled("UserSession")[0]
	g.SetNodeProp(sess, "user", values.String("u1"))
	check(t, s, g, Options{}, SS2)
}

func TestSS3UndeclaredEdgeProperty(t *testing.T) {
	s := build(t, edgePropSchema)
	g := pg.New()
	u := g.AddNode("User")
	sess := g.AddNode("UserSession")
	e := g.MustAddEdge(sess, u, "user")
	g.SetEdgeProp(e, "certainty", values.Float(1))
	g.SetEdgeProp(e, "mood", values.String("good"))
	check(t, s, g, Options{}, SS3)
}

func TestSS4UndeclaredEdgeLabel(t *testing.T) {
	s := build(t, sessionSchema)
	g := sessionGraph()
	sess := g.NodesLabeled("UserSession")[0]
	u := g.NodesLabeled("User")[0]
	g.MustAddEdge(u, sess, "attends")
	check(t, s, g, Options{}, SS4)
}

func TestSS4EdgeNamedLikeAttribute(t *testing.T) {
	s := build(t, sessionSchema)
	g := sessionGraph()
	sess := g.NodesLabeled("UserSession")[0]
	u := g.NodesLabeled("User")[0]
	g.MustAddEdge(sess, u, "startTime") // attribute name as edge label
	// WS3 also fires: (UserSession, startTime) ∈ dom(typeF), and the
	// target's label User is not ⊑ basetype(Time!) = Time.
	check(t, s, g, Options{}, SS4, WS3)
}

func TestWeakModeIgnoresUnjustified(t *testing.T) {
	// A graph with unknown labels weakly satisfies the schema (the WS
	// rules only constrain elements the schema mentions).
	s := build(t, sessionSchema)
	g := sessionGraph()
	g.AddNode("Ghost")
	res := Validate(s, g, Options{Mode: Weak})
	if !res.OK() {
		t.Errorf("weak mode: %v", res.Violations)
	}
}

func TestDirectivesMode(t *testing.T) {
	s := build(t, sessionSchema)
	g := sessionGraph()
	u := g.NodesLabeled("User")[0]
	g.DeleteNodeProp(u, "login")        // DS5
	g.SetNodeProp(u, "id", values.Null) // WS1, but not checked in Directives mode
	res := Validate(s, g, Options{Mode: Directives})
	if len(res.Violations) != 1 || res.Violations[0].Rule != DS5 {
		t.Errorf("directives mode: %v", res.Violations)
	}
}

func TestRuleSubset(t *testing.T) {
	s := build(t, sessionSchema)
	g := sessionGraph()
	g.AddNode("Ghost") // SS1
	u := g.NodesLabeled("User")[0]
	g.DeleteNodeProp(u, "login") // DS5
	res := Validate(s, g, Options{Rules: []Rule{SS1}})
	if len(res.Violations) != 1 || res.Violations[0].Rule != SS1 {
		t.Errorf("rule subset: %v", res.Violations)
	}
}

func TestMaxViolations(t *testing.T) {
	s := build(t, sessionSchema)
	g := pg.New()
	for i := 0; i < 100; i++ {
		g.AddNode("Ghost")
	}
	res := Validate(s, g, Options{MaxViolations: 5})
	if len(res.Violations) != 5 || !res.Truncated {
		t.Errorf("got %d violations, truncated=%v", len(res.Violations), res.Truncated)
	}
}

func TestDirectiveOnInterfaceField(t *testing.T) {
	// A directive declared on an interface field constrains all nodes
	// whose type implements the interface (λ(v) ⊑ t).
	s := build(t, `
		interface Named { name: String! @required }
		type City implements Named { name: String! }
		type Country implements Named { name: String! }`)
	g := pg.New()
	c := g.AddNode("City")
	g.SetNodeProp(c, "name", values.String("Linköping"))
	k := g.AddNode("Country") // missing name
	_ = k
	check(t, s, g, Options{}, DS5)
}

func TestParallelMatchesSequential(t *testing.T) {
	s := build(t, bookSchema)
	g := bookGraph()
	// Inject a mix of violations.
	b := g.NodesLabeled("Book")[0]
	a := g.NodesLabeled("Author")[0]
	g.MustAddEdge(b, a, "author")        // DS1
	g.MustAddEdge(a, a, "relatedAuthor") // DS2
	g.AddNode("Ghost")                   // SS1
	b2 := g.AddNode("Book")              // DS4 (no published), DS6 (no author), DS5 (no title)
	_ = b2

	seq := Validate(s, g, Options{})
	for _, workers := range []int{2, 4, 8} {
		for _, sharding := range []bool{false, true} {
			par := Validate(s, g, Options{Workers: workers, ElementSharding: sharding})
			if len(par.Violations) != len(seq.Violations) {
				t.Fatalf("workers=%d sharding=%v: %d violations, sequential %d\npar: %v\nseq: %v",
					workers, sharding, len(par.Violations), len(seq.Violations), par.Violations, seq.Violations)
			}
			for i := range seq.Violations {
				if par.Violations[i].Rule != seq.Violations[i].Rule || par.Violations[i].Message != seq.Violations[i].Message {
					t.Fatalf("workers=%d sharding=%v: violation %d differs:\npar: %v\nseq: %v",
						workers, sharding, i, par.Violations[i], seq.Violations[i])
				}
			}
		}
	}
}

func TestNaivePairScanMatchesIndexed(t *testing.T) {
	s := build(t, bookSchema)
	g := bookGraph()
	b := g.NodesLabeled("Book")[0]
	a := g.NodesLabeled("Author")[0]
	g.MustAddEdge(b, a, "author") // DS1
	s1, s2 := g.AddNode("BookSeries"), g.AddNode("BookSeries")
	g.MustAddEdge(s1, b, "contains")
	g.MustAddEdge(s2, b, "contains") // DS3
	a2 := g.AddNode("Author")
	g.MustAddEdge(a2, b, "favoriteBook")
	b3 := g.AddNode("Book")
	g.SetNodeProp(b3, "title", values.String("x"))
	g.MustAddEdge(b3, a, "author")
	p := g.NodesLabeled("Publisher")[0]
	g.MustAddEdge(p, b3, "published")
	g.MustAddEdge(a2, b3, "favoriteBook") // WS4 (two favoriteBook edges)

	fast := Validate(s, g, Options{})
	slow := Validate(s, g, Options{NaivePairScan: true})
	fr, sr := fast.ByRule(), slow.ByRule()
	for _, rule := range []Rule{WS4, DS1, DS3} {
		if len(fr[rule]) != len(sr[rule]) {
			t.Errorf("rule %s: indexed %d vs naive %d", rule, len(fr[rule]), len(sr[rule]))
		}
	}
}

func TestRuleTimings(t *testing.T) {
	s := build(t, sessionSchema)
	res := Validate(s, sessionGraph(), Options{CollectTimings: true})
	if len(res.RuleTime) != len(AllRules) {
		t.Errorf("got timings for %d rules, want %d", len(res.RuleTime), len(AllRules))
	}
}

func TestViolationFields(t *testing.T) {
	s := build(t, sessionSchema)
	g := sessionGraph()
	u := g.NodesLabeled("User")[0]
	g.SetNodeProp(u, "login", values.Int(1))
	res := Validate(s, g, Options{})
	if len(res.Violations) != 1 {
		t.Fatalf("violations: %v", res.Violations)
	}
	v := res.Violations[0]
	if v.Rule != WS1 || v.Node != u || v.TypeName != "User" || v.Property != "login" {
		t.Errorf("violation metadata: %+v", v)
	}
	if v.String() == "" {
		t.Error("empty violation string")
	}
}
