package validate_test

// Differential harness for incremental revalidation: randomized delta
// sequences driven through the transactional pg.Apply API, with
// Revalidate's spliced output required to match a from-scratch full
// validation byte-for-byte under every mode and engine configuration —
// including Undo round-trips, whose Touched set doubles as the delta.

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"pgschema/internal/gen"
	"pgschema/internal/pg"
	"pgschema/internal/validate"
	"pgschema/internal/values"
)

// revalConfigs is the engine matrix the incremental path is checked
// across. Program-backed configs exercise the cross-epoch rebind cache.
var revalConfigs = []struct {
	name     string
	compiled bool
	set      func(*validate.Options)
}{
	{"seq/fused", false, func(o *validate.Options) { o.Engine = validate.EngineFused }},
	{"par4/fused", false, func(o *validate.Options) { o.Engine = validate.EngineFused; o.Workers = 4 }},
	{"seq/rule-by-rule", false, func(o *validate.Options) { o.Engine = validate.EngineRuleByRule }},
	{"par4/rule-by-rule", false, func(o *validate.Options) { o.Engine = validate.EngineRuleByRule; o.Workers = 4 }},
	{"seq/fused+program", true, func(o *validate.Options) { o.Engine = validate.EngineFused }},
}

// randomGraphDelta builds a batch of mutations that Apply accepts:
// every referenced element is live, removals are not duplicated, and
// removed nodes never collide with explicitly removed edges. Faults
// (wrong value types, unknown labels, deleted required properties,
// duplicate edges) are deliberately common so splicing is exercised in
// both directions — new violations appearing and old ones clearing.
func randomGraphDelta(g *pg.Graph, rnd *rand.Rand) pg.Delta {
	var d pg.Delta
	nodes := g.Nodes()
	edges := g.Edges()
	nodeLabels := []string{"Author", "Book", "BookSeries", "Publisher", "Ghost"}
	edgeLabels := []string{"favoriteBook", "relatedAuthor", "author", "contains", "published", "bogus"}
	propVal := func() values.Value {
		if rnd.Intn(2) == 0 {
			return values.String("x")
		}
		return values.Int(int64(rnd.Intn(5)))
	}
	nAdds := rnd.Intn(3)
	for i := 0; i < nAdds; i++ {
		sp := pg.AddNodeSpec{Label: nodeLabels[rnd.Intn(len(nodeLabels))]}
		if rnd.Intn(2) == 0 {
			sp.Props = []pg.PropEntry{{Name: "name", Value: propVal()}}
		}
		d.AddNodes = append(d.AddNodes, sp)
	}
	anyNode := func() pg.NodeID {
		if nAdds > 0 && rnd.Intn(3) == 0 {
			return pg.NewNodeRef(rnd.Intn(nAdds))
		}
		return nodes[rnd.Intn(len(nodes))]
	}
	propNames := []string{"name", "title", "age", "pages", "stray"}
	edgeProps := []string{"since", "role", "stray"}
	for ops := 1 + rnd.Intn(5); ops > 0; ops-- {
		switch rnd.Intn(7) {
		case 0:
			d.AddEdges = append(d.AddEdges, pg.AddEdgeSpec{
				Src: anyNode(), Dst: anyNode(),
				Label: edgeLabels[rnd.Intn(len(edgeLabels))],
				Props: []pg.PropEntry{{Name: edgeProps[rnd.Intn(len(edgeProps))], Value: propVal()}},
			})
		case 1:
			d.RelabelNodes = append(d.RelabelNodes, pg.RelabelSpec{
				Node: anyNode(), Label: nodeLabels[rnd.Intn(len(nodeLabels))],
			})
		case 2:
			d.SetNodeProps = append(d.SetNodeProps, pg.NodePropSpec{
				Node: anyNode(), Name: propNames[rnd.Intn(len(propNames))], Value: propVal(),
			})
		case 3:
			d.DelNodeProps = append(d.DelNodeProps, pg.NodePropDelSpec{
				Node: anyNode(), Name: propNames[rnd.Intn(len(propNames))],
			})
		case 4:
			if len(edges) > 0 {
				d.SetEdgeProps = append(d.SetEdgeProps, pg.EdgePropSpec{
					Edge: edges[rnd.Intn(len(edges))], Name: edgeProps[rnd.Intn(len(edgeProps))], Value: propVal(),
				})
			}
		case 5:
			if len(edges) > 0 {
				e := edges[rnd.Intn(len(edges))]
				dup := false
				for _, x := range d.RemoveEdges {
					dup = dup || x == e
				}
				if !dup {
					d.RemoveEdges = append(d.RemoveEdges, e)
				}
			}
		case 6:
			if rnd.Intn(2) == 0 {
				n := nodes[rnd.Intn(len(nodes))]
				dup := false
				for _, x := range d.RemoveNodes {
					dup = dup || x == n
				}
				for _, x := range d.RemoveEdges {
					s, dst := g.Endpoints(x)
					dup = dup || s == n || dst == n
				}
				if !dup {
					d.RemoveNodes = append(d.RemoveNodes, n)
				}
			}
		}
	}
	return d
}

// TestDifferentialRevalidateDeltas is the incremental counterpart of
// the engine-equivalence matrix: 20 seeds × 3 modes × the revalidation
// engine configs, each chaining 8 random Apply steps (with periodic
// Undo round-trips) where every Revalidate must equal a full
// from-scratch validation byte-for-byte, and the next step's prev is
// the spliced result itself — so a single splice error would compound
// and surface.
func TestDifferentialRevalidateDeltas(t *testing.T) {
	s := buildDiff(t, diffSchema)
	ctx := context.Background()
	const seeds = 20
	for seed := int64(0); seed < seeds; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			base, err := gen.Conformant(s, gen.Config{Seed: seed, NodesPerType: 6})
			if err != nil {
				t.Fatalf("conformant: %v", err)
			}
			g := base.Clone()
			rnd := rand.New(rand.NewSource(seed * 7919))
			prog := validate.Compile(s)

			// One chained prev per (mode, config).
			type chainKey struct{ mode, cfg int }
			prev := make(map[chainKey]*validate.Result)
			optsFor := func(mi, ci int) validate.Options {
				opts := validate.Options{Mode: diffModes[mi].mode}
				revalConfigs[ci].set(&opts)
				if revalConfigs[ci].compiled {
					opts.Program = prog
				}
				return opts
			}
			for mi := range diffModes {
				for ci := range revalConfigs {
					opts := optsFor(mi, ci)
					prev[chainKey{mi, ci}] = validate.ValidateContext(ctx, s, g, opts)
				}
			}

			check := func(step string, delta validate.Delta) {
				for mi := range diffModes {
					full := validate.ValidateContext(ctx, s, g, validate.Options{Mode: diffModes[mi].mode})
					want := renderViolations(full)
					for ci := range revalConfigs {
						opts := optsFor(mi, ci)
						k := chainKey{mi, ci}
						inc := validate.Revalidate(ctx, s, g, prev[k], delta, opts)
						if got := renderViolations(inc); got != want {
							t.Fatalf("%s: mode %s cfg %s: incremental diverges from full:\n--- full ---\n%s--- incremental ---\n%s",
								step, diffModes[mi].name, revalConfigs[ci].name, want, got)
						}
						if inc.Incomplete {
							t.Fatalf("%s: mode %s cfg %s: unexpected Incomplete", step, diffModes[mi].name, revalConfigs[ci].name)
						}
						prev[k] = inc
					}
				}
			}

			for step := 0; step < 8; step++ {
				d := randomGraphDelta(g, rnd)
				u, err := g.Apply(d)
				if err != nil {
					t.Fatalf("step %d: apply: %v (delta %+v)", step, err, d)
				}
				check(fmt.Sprintf("step %d apply", step), validate.DeltaFor(u.Touched()))
				if step%3 == 2 {
					if err := u.Undo(); err != nil {
						t.Fatalf("step %d: undo: %v", step, err)
					}
					check(fmt.Sprintf("step %d undo", step), validate.DeltaFor(u.Touched()))
				}
			}
		})
	}
}

// TestCancelledContext verifies the cancellation contract: a cancelled
// context makes every engine return promptly — before the next chunk
// claim, so with a pre-cancelled context no chunk runs at all and no
// violations are reported even on a non-conformant graph — with
// Incomplete set; and an Incomplete result never seeds revalidation.
func TestCancelledContext(t *testing.T) {
	s := buildDiff(t, diffSchema)
	g, err := gen.Conformant(s, gen.Config{Seed: 3, NodesPerType: 100})
	if err != nil {
		t.Fatal(err)
	}
	// Make the graph non-conformant so a completed run would report
	// violations: delete a @required property.
	authors := g.NodesLabeled("Author")
	for _, v := range authors[:10] {
		g.DeleteNodeProp(v, "name")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, cfg := range revalConfigs {
		opts := validate.Options{}
		cfg.set(&opts)
		res := validate.ValidateContext(ctx, s, g, opts)
		if !res.Incomplete {
			t.Errorf("%s: cancelled run not marked Incomplete", cfg.name)
		}
		if len(res.Violations) != 0 {
			t.Errorf("%s: pre-cancelled run claimed %d chunks (reported %d violations)",
				cfg.name, len(res.Violations), len(res.Violations))
		}
	}

	// A cancelled Revalidate is Incomplete too.
	full := validate.ValidateContext(context.Background(), s, g, validate.Options{})
	if full.Incomplete || full.OK() {
		t.Fatalf("full run: incomplete=%v ok=%v", full.Incomplete, full.OK())
	}
	u, err := g.Apply(pg.Delta{SetNodeProps: []pg.NodePropSpec{
		{Node: authors[0], Name: "name", Value: values.String("back")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	inc := validate.Revalidate(ctx, s, g, full, validate.DeltaFor(u.Touched()), validate.Options{})
	if !inc.Incomplete {
		t.Error("cancelled Revalidate not marked Incomplete")
	}

	// An Incomplete prev must not seed splicing: Revalidate falls back
	// to a full (complete, correct) run under the fresh context.
	re := validate.Revalidate(context.Background(), s, g, inc, validate.Delta{}, validate.Options{})
	if re.Incomplete {
		t.Error("fallback full validation marked Incomplete")
	}
	want := renderViolations(validate.ValidateContext(context.Background(), s, g, validate.Options{}))
	if got := renderViolations(re); got != want {
		t.Error("fallback full validation diverges from direct full validation")
	}
}

// TestCancelMidRunNoGoroutineLeak cancels a parallel run while workers
// are live and then requires the process goroutine count to return to
// its baseline — the feeder must not block on the task channel and
// workers must exit at the next claim boundary.
func TestCancelMidRunNoGoroutineLeak(t *testing.T) {
	s := buildDiff(t, diffSchema)
	g, err := gen.Conformant(s, gen.Config{Seed: 5, NodesPerType: 2000})
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for _, engine := range []validate.Engine{validate.EngineFused, validate.EngineRuleByRule} {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan *validate.Result, 1)
		go func() {
			done <- validate.ValidateContext(ctx, s, g, validate.Options{Engine: engine, Workers: 8})
		}()
		time.Sleep(500 * time.Microsecond)
		cancel()
		select {
		case res := <-done:
			// A run cancelled mid-flight must be flagged; one that won
			// the race and finished first is complete — both are valid.
			_ = res
		case <-time.After(30 * time.Second):
			t.Fatalf("engine %s: cancelled run did not return", engine)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > before {
		t.Errorf("goroutine leak after cancellation: %d before, %d after", before, n)
	}
}
