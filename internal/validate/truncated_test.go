package validate

// Tests pinning the MaxViolations cap contract across the engines. The
// parallel engines buffer violations per task and merge once; a merge
// that drops buffered violations must flip Truncated, so a *completed*
// task never under-reports truncation. (Tasks never started once the cap
// is reached remain the documented weakness: Truncated may be false even
// though further violations exist, but true is always trustworthy.)

import "testing"

// capConfigs is every engine configuration whose cap semantics the tests
// below pin. The naive pair scans share the rule-by-rule collector path,
// so the rule-by-rule entries cover them.
var capConfigs = []struct {
	name string
	set  func(*Options)
}{
	{"seq/rule-by-rule", func(o *Options) { o.Engine = EngineRuleByRule }},
	{"seq/fused", func(o *Options) { o.Engine = EngineFused }},
	{"par4/rule-by-rule", func(o *Options) { o.Engine = EngineRuleByRule; o.Workers = 4 }},
	{"par4/fused", func(o *Options) { o.Engine = EngineFused; o.Workers = 4 }},
	{"par4+sharding/rule-by-rule", func(o *Options) {
		o.Engine = EngineRuleByRule
		o.Workers = 4
		o.ElementSharding = true
	}},
	{"par4+sharding/fused", func(o *Options) {
		o.Engine = EngineFused
		o.Workers = 4
		o.ElementSharding = true
	}},
}

// TestTruncatedSingleTaskOverflow drops two required properties of one
// node, so a single task — any engine, any sharding — carries both DS5
// violations. With MaxViolations = 1 the task's merge must drop one of
// them and flip Truncated; this is deterministic because the overflow
// happens inside one completed task, never across the task skip.
func TestTruncatedSingleTaskOverflow(t *testing.T) {
	s := build(t, sessionSchema)
	g := sessionGraph()
	u := g.NodesLabeled("User")[0]
	g.DeleteNodeProp(u, "id")
	g.DeleteNodeProp(u, "login")

	full := Validate(s, g, Options{})
	if len(full.Violations) != 2 || full.Truncated {
		t.Fatalf("setup: want exactly 2 violations untruncated, got %v (truncated=%v)",
			full.Violations, full.Truncated)
	}
	for _, cfg := range capConfigs {
		opts := Options{MaxViolations: 1}
		cfg.set(&opts)
		res := Validate(s, g, opts)
		if len(res.Violations) != 1 || !res.Truncated {
			t.Errorf("%s: max=1: got %d violations, truncated=%v; want 1, true",
				cfg.name, len(res.Violations), res.Truncated)
		}
	}
}

// TestTruncatedExactCapAllEngines sets the cap to the exact violation
// count: no engine may report truncation. This is deterministic even in
// parallel — the collector only becomes full once every violation has
// been collected, so no violation-carrying task can be skipped.
func TestTruncatedExactCapAllEngines(t *testing.T) {
	s := build(t, sessionSchema)
	g := sessionGraph()
	u := g.NodesLabeled("User")[0]
	g.DeleteNodeProp(u, "id")
	g.DeleteNodeProp(u, "login")

	for _, cfg := range capConfigs {
		opts := Options{MaxViolations: 2}
		cfg.set(&opts)
		res := Validate(s, g, opts)
		if len(res.Violations) != 2 || res.Truncated {
			t.Errorf("%s: max=2: got %d violations, truncated=%v; want 2, false",
				cfg.name, len(res.Violations), res.Truncated)
		}
	}
}

// TestTruncatedFusedPassBoundary pins the sequential fused engine's
// exactness across pass boundaries: the cap fills in the node pass (DS5)
// while the only other violation lives in the edge pass (SS4), so the
// engine must notice the overflow when the edge pass's emit is rejected.
func TestTruncatedFusedPassBoundary(t *testing.T) {
	s := build(t, sessionSchema)
	g := sessionGraph()
	u := g.NodesLabeled("User")[0]
	sess := g.NodesLabeled("UserSession")[0]
	g.DeleteNodeProp(u, "login")    // one DS5 violation (node pass)
	g.MustAddEdge(u, sess, "knows") // one SS4 violation (edge pass)

	full := Validate(s, g, Options{Engine: EngineFused})
	if len(full.Violations) != 2 || full.Truncated {
		t.Fatalf("setup: want exactly 2 violations untruncated, got %v (truncated=%v)",
			full.Violations, full.Truncated)
	}
	capped := Validate(s, g, Options{Engine: EngineFused, MaxViolations: 1})
	if len(capped.Violations) != 1 || !capped.Truncated {
		t.Errorf("max=1: got %d violations, truncated=%v; want 1, true",
			len(capped.Violations), capped.Truncated)
	}
	exact := Validate(s, g, Options{Engine: EngineFused, MaxViolations: 2})
	if len(exact.Violations) != 2 || exact.Truncated {
		t.Errorf("max=2: got %d violations, truncated=%v; want 2, false",
			len(exact.Violations), exact.Truncated)
	}
}
