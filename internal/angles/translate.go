package angles

import (
	"fmt"

	"pgschema/internal/schema"
)

// Translate maps an SDL-based Property Graph schema onto the Angles
// model's common fragment:
//
//   - every object type becomes a node type; its attribute fields become
//     typed properties, @required ⇒ mandatory, and a single-field @key ⇒
//     unique;
//   - every relationship declaration becomes one edge type per concrete
//     (source type, target type) pair, with cardinalities from the SDL
//     semantics: non-list ⇒ MaxOut 1, @required ⇒ MinOut 1,
//     @uniqueForTarget ⇒ MaxIn 1, @requiredForTarget ⇒ MinIn 1;
//   - edge-property arguments become edge properties (non-null ⇒
//     mandatory).
//
// Features outside the Angles model are rejected with an error rather
// than silently dropped: @distinct, @noLoops, and multi-field keys have
// no Angles counterpart. (Interface- and union-typed relationships are
// representable because this implementation evaluates cardinalities per
// (source, label) group; see the package comment.)
func Translate(s *schema.Schema) (*Schema, error) {
	out := NewSchema()
	for _, td := range s.ObjectTypes() {
		nt := &NodeType{Label: td.Name}
		unique := make(map[string]bool)
		for _, set := range td.KeyFieldSets() {
			if len(set) != 1 {
				return nil, fmt.Errorf("angles: composite @key on %s has no Angles counterpart", td.Name)
			}
			unique[set[0]] = true
		}
		for _, f := range td.Fields {
			if !s.IsAttribute(f) {
				continue
			}
			nt.Props = append(nt.Props, PropertyType{
				Name:      f.Name,
				DataType:  dataTypeOf(s, f.Type),
				Mandatory: schema.HasDirective(f.Directives, schema.DirRequired),
				Unique:    unique[f.Name],
			})
			delete(unique, f.Name)
		}
		if len(unique) > 0 {
			return nil, fmt.Errorf("angles: @key on %s references a non-attribute field", td.Name)
		}
		if err := out.AddNodeType(nt); err != nil {
			return nil, err
		}
	}

	// Relationship declarations, expanded to concrete endpoint pairs.
	// Constraints declared on interfaces distribute over implementers
	// exactly like the DS rules quantify with ⊑S.
	for _, td := range s.Types() {
		if td.Kind != schema.Object && td.Kind != schema.Interface {
			continue
		}
		for _, f := range td.Fields {
			if !s.IsRelationship(f) {
				continue
			}
			if schema.HasDirective(f.Directives, schema.DirDistinct) {
				return nil, fmt.Errorf("angles: @distinct on %s.%s has no Angles counterpart", td.Name, f.Name)
			}
			if schema.HasDirective(f.Directives, schema.DirNoLoops) {
				return nil, fmt.Errorf("angles: @noLoops on %s.%s has no Angles counterpart", td.Name, f.Name)
			}
			if td.Kind == schema.Interface {
				// The object-level re-declarations carry the edge
				// types; interface-level directives are merged below
				// through the group semantics — but only bounds can
				// merge, so reject interface-only directives that the
				// object declarations do not repeat.
				continue
			}
			var props []PropertyType
			for _, a := range f.Args {
				props = append(props, PropertyType{
					Name:      a.Name,
					DataType:  dataTypeOf(s, a.Type),
					Mandatory: a.Type.NonNull,
				})
			}
			dirs := effectiveDirectives(s, td, f)
			minOut, maxOut := Unbounded, Unbounded
			if !f.Type.IsList() {
				maxOut = 1
			}
			if schema.HasDirective(dirs, schema.DirRequired) {
				minOut = 1
			}
			minIn, maxIn := Unbounded, Unbounded
			if schema.HasDirective(dirs, schema.DirUniqueForTarget) {
				maxIn = 1
			}
			if schema.HasDirective(dirs, schema.DirRequiredForTarget) {
				minIn = 1
			}
			for _, target := range s.ConcreteTargets(f.Type.Base()) {
				et := &EdgeType{
					Label: f.Name, Source: td.Name, Target: target,
					Props:  append([]PropertyType(nil), props...),
					MinOut: minOut, MaxOut: maxOut,
					MinIn: minIn, MaxIn: maxIn,
				}
				if err := out.AddEdgeType(et); err != nil {
					return nil, err
				}
			}
		}
	}
	return out, nil
}

// effectiveDirectives merges the directives of the field with those on
// the same field in implemented interfaces.
func effectiveDirectives(s *schema.Schema, td *schema.TypeDef, f *schema.FieldDef) []schema.Applied {
	out := append([]schema.Applied(nil), f.Directives...)
	for _, in := range td.Interfaces {
		it := s.Type(in)
		if it == nil {
			continue
		}
		if itf := it.Field(f.Name); itf != nil {
			out = append(out, itf.Directives...)
		}
	}
	return out
}

// dataTypeOf maps an SDL attribute type to an Angles datatype string.
func dataTypeOf(s *schema.Schema, t schema.TypeRef) string {
	base := t.Base()
	var dt string
	td := s.Type(base)
	switch {
	case td != nil && td.Kind == schema.Enum:
		dt = "Enum"
	case base == "Int", base == "Float", base == "String", base == "Boolean", base == "ID":
		dt = base
	default:
		dt = "Any" // custom scalars
	}
	if t.IsList() {
		return "[" + dt + "]"
	}
	return dt
}
