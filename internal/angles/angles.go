// Package angles implements the Property Graph schema model of Renzo
// Angles, "The Property Graph Database Model" (AMW 2018) — the only other
// formal Property Graph schema proposal the paper discusses (§2.1) — as a
// baseline to compare the SDL-based approach against.
//
// Angles' model defines node types and edge types. A node type has a
// label and a set of typed properties; an edge type has a label, a source
// and a target node type, and typed properties. The extensions Angles
// outlines — mandatory properties, mandatory edges, property uniqueness,
// and cardinality constraints — are represented directly.
//
// One deliberate generalization: edge types that share a (source label,
// edge label) pair form a group, and out-cardinality constraints are
// evaluated against the group (a "knows" edge may point at either of two
// node types; the bound applies to the union). This matches the SDL
// approach's semantics for interface- and union-typed relationship
// fields, making the two models comparable on their common fragment (see
// the Translate function and the comparison tests).
package angles

import (
	"fmt"
	"sort"

	"pgschema/internal/pg"
	"pgschema/internal/values"
)

// Unbounded marks a cardinality bound as absent.
const Unbounded = -1

// PropertyType declares one property of a node or edge type.
type PropertyType struct {
	Name string
	// DataType is one of Int, Float, String, Boolean, ID, Any.
	DataType string
	// Mandatory properties must be present on every instance.
	Mandatory bool
	// Unique properties must have pairwise distinct values across all
	// instances of the declaring node type (Angles' uniqueness).
	Unique bool
}

// NodeType declares a node label with its allowed properties.
type NodeType struct {
	Label string
	Props []PropertyType

	propByName map[string]*PropertyType
}

// Prop returns the declared property, or nil.
func (n *NodeType) Prop(name string) *PropertyType {
	if n.propByName == nil {
		n.propByName = make(map[string]*PropertyType, len(n.Props))
		for i := range n.Props {
			n.propByName[n.Props[i].Name] = &n.Props[i]
		}
	}
	return n.propByName[name]
}

// EdgeType declares an edge label between a source and a target node
// type, with properties and cardinality bounds.
type EdgeType struct {
	Label  string
	Source string // source node type label
	Target string // target node type label
	Props  []PropertyType

	// Out-cardinality: how many (Label)-edges a Source node may/must
	// have to nodes of any target type in the same (Source, Label)
	// group. Unbounded means no constraint.
	MinOut, MaxOut int
	// In-cardinality: how many (Label)-edges a Target node may/must
	// receive from nodes of any source type in the same (Target, Label)
	// group.
	MinIn, MaxIn int

	propByName map[string]*PropertyType
}

// Prop returns the declared edge property, or nil.
func (e *EdgeType) Prop(name string) *PropertyType {
	if e.propByName == nil {
		e.propByName = make(map[string]*PropertyType, len(e.Props))
		for i := range e.Props {
			e.propByName[e.Props[i].Name] = &e.Props[i]
		}
	}
	return e.propByName[name]
}

// Schema is an Angles-style Property Graph schema.
type Schema struct {
	NodeTypes map[string]*NodeType
	EdgeTypes []*EdgeType

	// byTriple indexes edge types by (source, label, target).
	byTriple map[[3]string]*EdgeType
}

// NewSchema returns an empty schema.
func NewSchema() *Schema {
	return &Schema{NodeTypes: make(map[string]*NodeType), byTriple: make(map[[3]string]*EdgeType)}
}

// AddNodeType declares a node type; duplicate labels are an error.
func (s *Schema) AddNodeType(nt *NodeType) error {
	if _, dup := s.NodeTypes[nt.Label]; dup {
		return fmt.Errorf("angles: node type %q declared twice", nt.Label)
	}
	s.NodeTypes[nt.Label] = nt
	return nil
}

// AddEdgeType declares an edge type; the endpoints must be declared and
// the (source, label, target) triple must be fresh.
func (s *Schema) AddEdgeType(et *EdgeType) error {
	if s.NodeTypes[et.Source] == nil {
		return fmt.Errorf("angles: edge type %q references undeclared source %q", et.Label, et.Source)
	}
	if s.NodeTypes[et.Target] == nil {
		return fmt.Errorf("angles: edge type %q references undeclared target %q", et.Label, et.Target)
	}
	key := [3]string{et.Source, et.Label, et.Target}
	if _, dup := s.byTriple[key]; dup {
		return fmt.Errorf("angles: edge type (%s)-[%s]->(%s) declared twice", et.Source, et.Label, et.Target)
	}
	s.byTriple[key] = et
	s.EdgeTypes = append(s.EdgeTypes, et)
	return nil
}

// EdgeType looks up the declaration for a concrete edge triple.
func (s *Schema) EdgeType(source, label, target string) *EdgeType {
	return s.byTriple[[3]string{source, label, target}]
}

// Violation is one schema violation found by Validate.
type Violation struct {
	Kind    string // see the Kind* constants
	Message string
	Node    pg.NodeID
	Edge    pg.EdgeID
}

// The violation kinds.
const (
	KindUnknownNodeType = "unknown-node-type"
	KindUnknownProperty = "unknown-property"
	KindBadPropertyType = "bad-property-type"
	KindMissingProperty = "missing-property"
	KindDuplicateValue  = "duplicate-value"
	KindUnknownEdgeType = "unknown-edge-type"
	KindUnknownEdgeProp = "unknown-edge-property"
	KindBadEdgePropType = "bad-edge-property-type"
	KindMissingEdgeProp = "missing-edge-property"
	KindOutCardinality  = "out-cardinality"
	KindInCardinality   = "in-cardinality"
)

// String renders the violation.
func (v Violation) String() string { return v.Kind + ": " + v.Message }

// Validate checks a Property Graph against the schema and returns all
// violations, deterministically ordered.
func (s *Schema) Validate(g *pg.Graph) []Violation {
	var out []Violation

	// Node typing, properties, mandatory properties.
	for _, v := range g.Nodes() {
		nt := s.NodeTypes[g.NodeLabel(v)]
		if nt == nil {
			out = append(out, Violation{Kind: KindUnknownNodeType, Node: v, Edge: -1,
				Message: fmt.Sprintf("node %d has undeclared type %q", v, g.NodeLabel(v))})
			continue
		}
		for _, name := range g.NodePropNames(v) {
			pt := nt.Prop(name)
			if pt == nil {
				out = append(out, Violation{Kind: KindUnknownProperty, Node: v, Edge: -1,
					Message: fmt.Sprintf("node %d (%s) has undeclared property %q", v, nt.Label, name)})
				continue
			}
			val, _ := g.NodeProp(v, name)
			if !dataTypeMember(pt.DataType, val) {
				out = append(out, Violation{Kind: KindBadPropertyType, Node: v, Edge: -1,
					Message: fmt.Sprintf("node %d (%s): property %q = %s is not a %s", v, nt.Label, name, val, pt.DataType)})
			}
		}
		for i := range nt.Props {
			pt := &nt.Props[i]
			if pt.Mandatory {
				if _, ok := g.NodeProp(v, pt.Name); !ok {
					out = append(out, Violation{Kind: KindMissingProperty, Node: v, Edge: -1,
						Message: fmt.Sprintf("node %d (%s) lacks mandatory property %q", v, nt.Label, pt.Name)})
				}
			}
		}
	}

	// Uniqueness.
	for label, nt := range s.NodeTypes {
		for i := range nt.Props {
			pt := &nt.Props[i]
			if !pt.Unique {
				continue
			}
			seen := make(map[string]pg.NodeID)
			for _, v := range g.NodesLabeled(label) {
				val, ok := g.NodeProp(v, pt.Name)
				if !ok {
					continue
				}
				if prev, dup := seen[val.Key()]; dup {
					out = append(out, Violation{Kind: KindDuplicateValue, Node: v, Edge: -1,
						Message: fmt.Sprintf("nodes %d and %d (%s) share unique property %q = %s", prev, v, label, pt.Name, val)})
				} else {
					seen[val.Key()] = v
				}
			}
		}
	}

	// Edge typing and edge properties.
	for _, e := range g.Edges() {
		src, dst := g.Endpoints(e)
		et := s.EdgeType(g.NodeLabel(src), g.EdgeLabel(e), g.NodeLabel(dst))
		if et == nil {
			out = append(out, Violation{Kind: KindUnknownEdgeType, Node: src, Edge: e,
				Message: fmt.Sprintf("edge %d: (%s)-[%s]->(%s) matches no edge type", e, g.NodeLabel(src), g.EdgeLabel(e), g.NodeLabel(dst))})
			continue
		}
		for _, name := range g.EdgePropNames(e) {
			pt := et.Prop(name)
			if pt == nil {
				out = append(out, Violation{Kind: KindUnknownEdgeProp, Node: src, Edge: e,
					Message: fmt.Sprintf("edge %d (%s) has undeclared property %q", e, et.Label, name)})
				continue
			}
			val, _ := g.EdgeProp(e, name)
			if !dataTypeMember(pt.DataType, val) {
				out = append(out, Violation{Kind: KindBadEdgePropType, Node: src, Edge: e,
					Message: fmt.Sprintf("edge %d (%s): property %q = %s is not a %s", e, et.Label, name, val, pt.DataType)})
			}
		}
		for i := range et.Props {
			pt := &et.Props[i]
			if pt.Mandatory {
				if _, ok := g.EdgeProp(e, pt.Name); !ok {
					out = append(out, Violation{Kind: KindMissingEdgeProp, Node: src, Edge: e,
						Message: fmt.Sprintf("edge %d (%s) lacks mandatory property %q", e, et.Label, pt.Name)})
				}
			}
		}
	}

	// Cardinality constraints, evaluated per (source, label) and
	// (target, label) group.
	out = append(out, s.checkCardinalities(g)...)

	sort.Slice(out, func(i, j int) bool {
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		if out[i].Node != out[j].Node {
			return out[i].Node < out[j].Node
		}
		return out[i].Message < out[j].Message
	})
	return out
}

// group aggregates the bounds of edge types sharing (source, label) or
// (target, label).
type group struct {
	min, max int
}

func (s *Schema) checkCardinalities(g *pg.Graph) []Violation {
	var out []Violation

	outGroups := make(map[[2]string]group) // (source label, edge label)
	inGroups := make(map[[2]string]group)  // (target label, edge label)
	for _, et := range s.EdgeTypes {
		ok := [2]string{et.Source, et.Label}
		cur, exists := outGroups[ok]
		if !exists {
			cur = group{min: Unbounded, max: Unbounded}
		}
		cur.min = mergeBound(cur.min, et.MinOut)
		cur.max = mergeBound(cur.max, et.MaxOut)
		outGroups[ok] = cur

		ik := [2]string{et.Target, et.Label}
		cur, exists = inGroups[ik]
		if !exists {
			cur = group{min: Unbounded, max: Unbounded}
		}
		cur.min = mergeBound(cur.min, et.MinIn)
		cur.max = mergeBound(cur.max, et.MaxIn)
		inGroups[ik] = cur
	}

	for key, grp := range outGroups {
		if grp.min == Unbounded && grp.max == Unbounded {
			continue
		}
		for _, v := range g.NodesLabeled(key[0]) {
			n := g.OutDegreeLabeled(v, key[1])
			if grp.min != Unbounded && n < grp.min {
				out = append(out, Violation{Kind: KindOutCardinality, Node: v, Edge: -1,
					Message: fmt.Sprintf("node %d (%s) has %d outgoing %q edges, needs at least %d", v, key[0], n, key[1], grp.min)})
			}
			if grp.max != Unbounded && n > grp.max {
				out = append(out, Violation{Kind: KindOutCardinality, Node: v, Edge: -1,
					Message: fmt.Sprintf("node %d (%s) has %d outgoing %q edges, allows at most %d", v, key[0], n, key[1], grp.max)})
			}
		}
	}
	for key, grp := range inGroups {
		if grp.min == Unbounded && grp.max == Unbounded {
			continue
		}
		for _, v := range g.NodesLabeled(key[0]) {
			n := len(g.InEdgesLabeled(v, key[1]))
			if grp.min != Unbounded && n < grp.min {
				out = append(out, Violation{Kind: KindInCardinality, Node: v, Edge: -1,
					Message: fmt.Sprintf("node %d (%s) has %d incoming %q edges, needs at least %d", v, key[0], n, key[1], grp.min)})
			}
			if grp.max != Unbounded && n > grp.max {
				out = append(out, Violation{Kind: KindInCardinality, Node: v, Edge: -1,
					Message: fmt.Sprintf("node %d (%s) has %d incoming %q edges, allows at most %d", v, key[0], n, key[1], grp.max)})
			}
		}
	}
	return out
}

// mergeBound combines two bounds of the same group: the tighter
// constraint wins (min: larger; max: smaller) — but an Unbounded entry
// defers to the other.
func mergeBound(a, b int) int {
	if a == Unbounded {
		return b
	}
	if b == Unbounded {
		return a
	}
	if a > b {
		return a
	}
	return b
}

// dataTypeMember implements Angles' property datatypes, with "Any" (used
// for the SDL approach's custom scalars) accepting every atomic value and
// list types written as "[T]".
func dataTypeMember(dt string, v values.Value) bool {
	if v.IsNull() {
		return true // absence of a value; mandatory-ness is separate
	}
	if len(dt) > 2 && dt[0] == '[' && dt[len(dt)-1] == ']' {
		if v.Kind() != values.KindList {
			return false
		}
		elem := dt[1 : len(dt)-1]
		for i := 0; i < v.Len(); i++ {
			if !dataTypeMember(elem, v.Elem(i)) {
				return false
			}
		}
		return true
	}
	if v.Kind() == values.KindList {
		return false
	}
	switch dt {
	case "Any":
		return true
	case "Enum":
		return v.Kind() == values.KindEnum || v.Kind() == values.KindString
	default:
		return values.BuiltinMember(dt, v)
	}
}
