package angles

import (
	"testing"

	"pgschema/internal/gen"
	"pgschema/internal/parser"
	"pgschema/internal/pg"
	"pgschema/internal/schema"
	"pgschema/internal/validate"
	"pgschema/internal/values"
)

func buildSDL(t *testing.T, src string) *schema.Schema {
	t.Helper()
	doc, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	s, err := schema.Build(doc, schema.Options{})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	return s
}

// commonSDL is a schema inside the Angles-translatable fragment.
const commonSDL = `
type User @key(fields: ["id"]) {
	id: ID! @required
	age: Int
	session(weight: Float!): [Session] @uniqueForTarget @requiredForTarget
}
type Session {
	start: String! @required
	host: Host! @required
}
type Host {
	addr: String!
}`

func TestTranslateShape(t *testing.T) {
	s := buildSDL(t, commonSDL)
	a, err := Translate(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.NodeTypes) != 3 {
		t.Errorf("node types: %d", len(a.NodeTypes))
	}
	user := a.NodeTypes["User"]
	if p := user.Prop("id"); p == nil || !p.Mandatory || !p.Unique || p.DataType != "ID" {
		t.Errorf("User.id: %+v", p)
	}
	if p := user.Prop("age"); p == nil || p.Mandatory || p.Unique || p.DataType != "Int" {
		t.Errorf("User.age: %+v", p)
	}
	et := a.EdgeType("User", "session", "Session")
	if et == nil {
		t.Fatal("no (User)-[session]->(Session) edge type")
	}
	if et.MaxIn != 1 || et.MinIn != 1 {
		t.Errorf("session in-bounds: %d..%d", et.MinIn, et.MaxIn)
	}
	if et.MaxOut != Unbounded || et.MinOut != Unbounded {
		t.Errorf("session out-bounds: %d..%d", et.MinOut, et.MaxOut)
	}
	if p := et.Prop("weight"); p == nil || !p.Mandatory || p.DataType != "Float" {
		t.Errorf("session.weight: %+v", p)
	}
	host := a.EdgeType("Session", "host", "Host")
	if host == nil || host.MaxOut != 1 || host.MinOut != 1 {
		t.Errorf("host bounds: %+v", host)
	}
}

func TestTranslateRejectsOutsideFragment(t *testing.T) {
	cases := []string{
		`type A { rel: [A] @distinct }`,
		`type A { rel: [A] @noLoops }`,
		`type A @key(fields: ["x", "y"]) { x: Int y: Int }`,
	}
	for _, src := range cases {
		s := buildSDL(t, src)
		if _, err := Translate(s); err == nil {
			t.Errorf("expected translation error for %q", src)
		}
	}
}

func TestTranslateInterfaceTargets(t *testing.T) {
	s := buildSDL(t, `
		type Person { favoriteFood: Food }
		interface Food { name: String! }
		type Pizza implements Food { name: String! }
		type Pasta implements Food { name: String! }`)
	a, err := Translate(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.EdgeType("Person", "favoriteFood", "Pizza") == nil ||
		a.EdgeType("Person", "favoriteFood", "Pasta") == nil {
		t.Error("interface target not expanded into edge types")
	}
}

// TestBaselineAgreementOnConformantGraphs: graphs generated against the
// SDL schema validate cleanly under the translated Angles schema too.
func TestBaselineAgreementOnConformantGraphs(t *testing.T) {
	s := buildSDL(t, commonSDL)
	a, err := Translate(s)
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(0); seed < 5; seed++ {
		g, err := gen.Conformant(s, gen.Config{Seed: seed, NodesPerType: 15})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if res := validate.Validate(s, g, validate.Options{}); !res.OK() {
			t.Fatalf("seed %d: SDL validator rejects: %v", seed, res.Violations)
		}
		if vs := a.Validate(g); len(vs) != 0 {
			t.Fatalf("seed %d: Angles baseline rejects a conformant graph: %v", seed, vs[:min(3, len(vs))])
		}
	}
}

// TestBaselineAgreementOnInjectedViolations: for every rule in the common
// fragment, an injected violation is flagged by both validators.
func TestBaselineAgreementOnInjectedViolations(t *testing.T) {
	// Rules outside the common fragment (DS1/DS2: @distinct/@noLoops;
	// WS2 is representable so it is included).
	common := []validate.Rule{
		validate.WS1, validate.WS2, validate.WS3, validate.WS4,
		validate.DS3, validate.DS4, validate.DS5, validate.DS6, validate.DS7,
		validate.SS1, validate.SS2, validate.SS3, validate.SS4,
	}
	s := buildSDL(t, commonSDL)
	a, err := Translate(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, rule := range common {
		t.Run(string(rule), func(t *testing.T) {
			g, err := gen.Conformant(s, gen.Config{Seed: 3, NodesPerType: 10})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := gen.Inject(s, g, rule, 3); err != nil {
				t.Skipf("rule not injectable in this schema: %v", err)
			}
			sdlRes := validate.Validate(s, g, validate.Options{})
			anglesRes := a.Validate(g)
			if sdlRes.OK() {
				t.Fatalf("SDL validator missed the injected %s violation", rule)
			}
			if len(anglesRes) == 0 {
				t.Errorf("Angles baseline missed the injected %s violation (SDL reported %v)", rule, sdlRes.Violations)
			}
		})
	}
}

func TestAnglesDirectUsage(t *testing.T) {
	// The baseline is usable standalone, without SDL.
	a := NewSchema()
	if err := a.AddNodeType(&NodeType{Label: "City", Props: []PropertyType{
		{Name: "name", DataType: "String", Mandatory: true, Unique: true},
		{Name: "population", DataType: "Int"},
	}}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddNodeType(&NodeType{Label: "Country"}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddEdgeType(&EdgeType{
		Label: "capitalOf", Source: "City", Target: "Country",
		MinOut: Unbounded, MaxOut: 1, MinIn: 1, MaxIn: 1,
	}); err != nil {
		t.Fatal(err)
	}

	g := pg.New()
	paris := g.AddNode("City")
	g.SetNodeProp(paris, "name", values.String("Paris"))
	france := g.AddNode("Country")
	g.MustAddEdge(paris, france, "capitalOf")
	if vs := a.Validate(g); len(vs) != 0 {
		t.Fatalf("valid graph rejected: %v", vs)
	}

	// Missing mandatory name.
	lyon := g.AddNode("City")
	vs := a.Validate(g)
	if !hasKind(vs, KindMissingProperty) {
		t.Errorf("missing mandatory property not reported: %v", vs)
	}
	g.SetNodeProp(lyon, "name", values.String("Paris")) // duplicate unique
	vs = a.Validate(g)
	if !hasKind(vs, KindDuplicateValue) {
		t.Errorf("duplicate unique value not reported: %v", vs)
	}
	g.SetNodeProp(lyon, "name", values.String("Lyon"))
	g.SetNodeProp(lyon, "population", values.String("big")) // wrong type
	vs = a.Validate(g)
	if !hasKind(vs, KindBadPropertyType) {
		t.Errorf("bad property type not reported: %v", vs)
	}
	g.DeleteNodeProp(lyon, "population")

	// Second capital for France: in-cardinality violation.
	g.MustAddEdge(lyon, france, "capitalOf")
	vs = a.Validate(g)
	if !hasKind(vs, KindInCardinality) {
		t.Errorf("in-cardinality not reported: %v", vs)
	}

	// An edge with no declared type.
	g2 := pg.New()
	c := g2.AddNode("City")
	g2.SetNodeProp(c, "name", values.String("Rome"))
	c2 := g2.AddNode("City")
	g2.SetNodeProp(c2, "name", values.String("Milan"))
	g2.MustAddEdge(c, c2, "twinnedWith")
	vs = a.Validate(g2)
	if !hasKind(vs, KindUnknownEdgeType) {
		t.Errorf("unknown edge type not reported: %v", vs)
	}
}

func TestAnglesSchemaErrors(t *testing.T) {
	a := NewSchema()
	if err := a.AddNodeType(&NodeType{Label: "A"}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddNodeType(&NodeType{Label: "A"}); err == nil {
		t.Error("duplicate node type accepted")
	}
	if err := a.AddEdgeType(&EdgeType{Label: "e", Source: "A", Target: "Missing"}); err == nil {
		t.Error("edge to undeclared target accepted")
	}
	if err := a.AddEdgeType(&EdgeType{Label: "e", Source: "Missing", Target: "A"}); err == nil {
		t.Error("edge from undeclared source accepted")
	}
}

func hasKind(vs []Violation, kind string) bool {
	for _, v := range vs {
		if v.Kind == kind {
			return true
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
