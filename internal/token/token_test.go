package token

import "testing"

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Illegal: "Illegal", EOF: "EOF", Name: "Name", Int: "Int",
		Float: "Float", String: "String", BlockString: "BlockString",
		Bang: "'!'", Spread: "'...'", Pipe: "'|'",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(-1).String(); got != "Kind(-1)" {
		t.Errorf("out of range: %q", got)
	}
}

func TestPosition(t *testing.T) {
	p := Position{Offset: 10, Line: 2, Column: 5}
	if p.String() != "2:5" {
		t.Errorf("String: %q", p.String())
	}
	if !p.IsValid() || (Position{}).IsValid() {
		t.Error("IsValid broken")
	}
}

func TestTokenString(t *testing.T) {
	cases := []struct {
		tok  Token
		want string
	}{
		{Token{Kind: Name, Literal: "foo"}, "Name(foo)"},
		{Token{Kind: Int, Literal: "42"}, "Int(42)"},
		{Token{Kind: String, Literal: "a b"}, `String("a b")`},
		{Token{Kind: Illegal, Literal: "boom"}, "Illegal(boom)"},
		{Token{Kind: BraceL}, "'{'"},
	}
	for _, c := range cases {
		if got := c.tok.String(); got != c.want {
			t.Errorf("got %q, want %q", got, c.want)
		}
	}
}
