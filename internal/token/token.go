// Package token defines the lexical tokens of the GraphQL Schema Definition
// Language (SDL), June 2018 edition, together with source positions.
//
// The token set follows §2 (Language) of the GraphQL specification: the
// punctuators, names, and the Int, Float, and String (including block
// string) literal forms. Comments and commas are "ignored tokens" in the
// spec; the lexer discards them and they never appear here.
package token

import "fmt"

// Kind identifies the lexical class of a token.
type Kind int

// The token kinds of the SDL grammar.
const (
	// Special tokens.
	Illegal Kind = iota // a lexical error; Literal holds the message
	EOF                 // end of input

	// Lexical classes with a literal value.
	Name        // Letter followed by letters, digits, underscores
	Int         // integer literal, e.g. 42, -7
	Float       // float literal, e.g. 3.14, -1e10
	String      // quoted string literal, value is the *decoded* text
	BlockString // triple-quoted string literal, value is the decoded text

	// Punctuators (§2.1.8).
	Bang      // !
	Dollar    // $
	Amp       // &
	ParenL    // (
	ParenR    // )
	Spread    // ...
	Colon     // :
	Equals    // =
	At        // @
	BracketL  // [
	BracketR  // ]
	BraceL    // {
	BraceR    // }
	Pipe      // |
	numTokens // sentinel; keep last
)

var kindNames = [...]string{
	Illegal:     "Illegal",
	EOF:         "EOF",
	Name:        "Name",
	Int:         "Int",
	Float:       "Float",
	String:      "String",
	BlockString: "BlockString",
	Bang:        "'!'",
	Dollar:      "'$'",
	Amp:         "'&'",
	ParenL:      "'('",
	ParenR:      "')'",
	Spread:      "'...'",
	Colon:       "':'",
	Equals:      "'='",
	At:          "'@'",
	BracketL:    "'['",
	BracketR:    "']'",
	BraceL:      "'{'",
	BraceR:      "'}'",
	Pipe:        "'|'",
}

// String returns a human-readable name for the kind.
func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Position is a line/column location in an SDL source text. Lines and
// columns are 1-based; Offset is the 0-based byte offset.
type Position struct {
	Offset int
	Line   int
	Column int
}

// String formats the position as "line:column".
func (p Position) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Column) }

// IsValid reports whether the position has been set.
func (p Position) IsValid() bool { return p.Line > 0 }

// Token is a single lexical token with its decoded literal and position.
type Token struct {
	Kind    Kind
	Literal string // decoded value for Name/Int/Float/String/BlockString; message for Illegal
	Pos     Position
}

// String formats the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case Name, Int, Float:
		return fmt.Sprintf("%s(%s)", t.Kind, t.Literal)
	case String, BlockString:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Literal)
	case Illegal:
		return fmt.Sprintf("Illegal(%s)", t.Literal)
	default:
		return t.Kind.String()
	}
}
