// Quickstart: parse an SDL schema, build a small Property Graph, check
// strong satisfaction, and see what a violation report looks like.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"pgschema"
)

const sdl = `
type User @key(fields: ["id"]) {
	id: ID! @required
	login: String! @required
	follows: [User] @distinct @noLoops
}`

func main() {
	s, err := pgschema.ParseSchema(sdl)
	if err != nil {
		log.Fatal(err)
	}

	g := pgschema.NewGraph()
	ada := g.AddNode("User")
	g.SetNodeProp(ada, "id", pgschema.ID("u1"))
	g.SetNodeProp(ada, "login", pgschema.String("ada"))
	bob := g.AddNode("User")
	g.SetNodeProp(bob, "id", pgschema.ID("u2"))
	g.SetNodeProp(bob, "login", pgschema.String("bob"))
	g.MustAddEdge(ada, bob, "follows")

	res := pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{})
	fmt.Printf("conformant graph: ok=%v\n", res.OK())

	// Now break three rules: a duplicate key, a loop, a missing login.
	evil := g.AddNode("User")
	g.SetNodeProp(evil, "id", pgschema.ID("u1")) // duplicate key → DS7, missing login → DS5
	g.MustAddEdge(bob, bob, "follows")           // loop → DS2

	res = pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{})
	fmt.Printf("after mutations: ok=%v, %d violations\n", res.OK(), len(res.Violations))
	for _, v := range res.Violations {
		fmt.Println("  ", v)
	}

	// Satisfiability: is there any graph with a User node at all?
	rep := pgschema.CheckType(s, "User", pgschema.SatOptions{})
	fmt.Printf("type User is %s (decided by %s)\n", rep.Verdict, rep.Method)
}
