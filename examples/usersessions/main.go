// Usersessions reproduces the paper's running example (Examples 3.1–3.5
// and 3.12): the UserSession/User schema with a custom scalar, mandatory
// properties, key constraints, and edge properties declared through field
// arguments.
//
// Run with: go run ./examples/usersessions
package main

import (
	"fmt"
	"log"
	"strings"

	"pgschema"
)

// The schema of Example 3.1, extended with the @key of Example 3.4 and
// the edge properties of Example 3.12.
const sdl = `
type UserSession {
	id: ID! @required
	user(certainty: Float! comment: String): User! @required
	startTime: Time! @required
	endTime: Time!
}
type User @key(fields: ["id"]) @key(fields: ["login"]) {
	id: ID! @required
	login: String! @required
	nicknames: [String!]!
}
scalar Time`

func main() {
	s, err := pgschema.ParseSchema(sdl)
	if err != nil {
		log.Fatal(err)
	}
	// Give the Time scalar real semantics: ISO-ish timestamps only.
	s.SetScalarValidator("Time", func(v pgschema.Value) bool {
		return v.Kind().String() == "String" && strings.Contains(v.AsString(), "T")
	})

	g := pgschema.NewGraph()
	ada := g.AddNode("User")
	g.SetNodeProp(ada, "id", pgschema.ID("u1"))
	g.SetNodeProp(ada, "login", pgschema.String("ada"))
	g.SetNodeProp(ada, "nicknames", pgschema.List(pgschema.String("lovelace"), pgschema.String("al")))

	sess := g.AddNode("UserSession")
	g.SetNodeProp(sess, "id", pgschema.ID("s1"))
	g.SetNodeProp(sess, "startTime", pgschema.String("2019-06-30T09:00:00Z"))
	g.SetNodeProp(sess, "endTime", pgschema.String("2019-06-30T10:30:00Z"))
	e := g.MustAddEdge(sess, ada, "user")
	g.SetEdgeProp(e, "certainty", pgschema.Float(0.97))
	g.SetEdgeProp(e, "comment", pgschema.String("cookie match"))

	report(s, g, "conformant session graph")

	// Example 3.5: "every UserSession node must have exactly one
	// outgoing edge" — add a second user edge and watch WS4 fire.
	bob := g.AddNode("User")
	g.SetNodeProp(bob, "id", pgschema.ID("u2"))
	g.SetNodeProp(bob, "login", pgschema.String("bob"))
	g.MustAddEdge(sess, bob, "user")
	report(s, g, "after second user edge (WS4)")

	// Example 3.12: the certainty edge property is mandatory — an edge
	// without it passes WS2 (no value to type-check) but its absence is
	// visible when the value is mistyped.
	g2 := pgschema.NewGraph()
	u := g2.AddNode("User")
	g2.SetNodeProp(u, "id", pgschema.ID("u3"))
	g2.SetNodeProp(u, "login", pgschema.String("carol"))
	s2 := g2.AddNode("UserSession")
	g2.SetNodeProp(s2, "id", pgschema.ID("s2"))
	g2.SetNodeProp(s2, "startTime", pgschema.String("2019-07-01T08:00:00Z"))
	e2 := g2.MustAddEdge(s2, u, "user")
	g2.SetEdgeProp(e2, "certainty", pgschema.String("quite sure")) // not a Float!
	report(s, g2, "string-valued certainty (WS2)")

	// The Time validator in action: a malformed startTime.
	g3 := pgschema.NewGraph()
	u3 := g3.AddNode("User")
	g3.SetNodeProp(u3, "id", pgschema.ID("u4"))
	g3.SetNodeProp(u3, "login", pgschema.String("dan"))
	s3 := g3.AddNode("UserSession")
	g3.SetNodeProp(s3, "id", pgschema.ID("s3"))
	g3.SetNodeProp(s3, "startTime", pgschema.String("yesterday-ish"))
	g3.MustAddEdge(s3, u3, "user")
	report(s, g3, "malformed Time value (WS1 via custom scalar)")
}

func report(s *pgschema.Schema, g *pgschema.Graph, title string) {
	res := pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{})
	fmt.Printf("%-45s ok=%v", title, res.OK())
	if !res.OK() {
		fmt.Printf("  (%d violations)", len(res.Violations))
	}
	fmt.Println()
	for _, v := range res.Violations {
		fmt.Println("   ", v)
	}
}
