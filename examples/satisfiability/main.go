// Satisfiability walks through §6.2: the three unsatisfiable diagrams of
// Example 6.1 and the Theorem 2 reduction from propositional SAT,
// exercising the full checker portfolio (counting, ALCQI tableau, bounded
// finite-model search).
//
// Run with: go run ./examples/satisfiability
package main

import (
	"fmt"
	"log"

	"pgschema"
)

// Diagram (a), verbatim from Example 6.1. (As printed in the paper the
// schema violates Definition 4.3 — [OT1] is not a subtype of OT1 — so the
// consistency check is disabled to reproduce it literally.)
const diagramA = `
type OT1 {
}
interface IT {
	hasOT1: OT1 @uniqueForTarget
}
type OT2 implements IT {
	hasOT1: [OT1] @requiredForTarget
}
type OT3 implements IT {
	hasOT1: [OT1] @requiredForTarget
}`

// Diagram (b): a satisfying graph with an OT2 node would need an
// infinite alternating chain of OT1/OT3 nodes — finitely unsatisfiable
// although its ALCQI translation has an (infinite) model.
const diagramB = `
interface IT {
	f: [OT1] @uniqueForTarget @requiredForTarget
}
type OT2 implements IT {
	f: [OT1] @required
}
type OT3 implements IT {
	f: [OT1] @required
}
type OT1 {
	g: [OT3] @required @uniqueForTarget
}`

// Diagram (c): an OT2 node would have to coincide with an OT3 node.
const diagramC = `
interface IT {
	f: [OT1] @uniqueForTarget
}
type OT2 implements IT {
	f: [OT1] @required
}
type OT3 implements IT {
	f: [OT1] @requiredForTarget
}
type OT1 {
}`

func main() {
	fmt.Println("Example 6.1 — unsatisfiable object types:")
	for _, d := range []struct {
		name, sdl, query string
		skipConsistency  bool
	}{
		{"diagram (a)", diagramA, "OT1", true},
		{"diagram (b)", diagramB, "OT2", false},
		{"diagram (c)", diagramC, "OT2", false},
	} {
		s, err := pgschema.ParseSchemaWithOptions(d.sdl, pgschema.BuildOptions{SkipConsistencyCheck: d.skipConsistency})
		if err != nil {
			log.Fatalf("%s: %v", d.name, err)
		}
		rep := pgschema.CheckType(s, d.query, pgschema.SatOptions{})
		fmt.Printf("  %-12s type %-4s: %-13s (decided by %s)\n", d.name, d.query, rep.Verdict, rep.Method)
	}

	// A satisfiable schema with witnesses.
	fmt.Println("\nwitness construction:")
	s, err := pgschema.ParseSchema(`
		type Conference { talks: [Talk] @required @distinct }
		type Talk { speaker: Speaker! @required }
		type Speaker { name: String! @required }`)
	if err != nil {
		log.Fatal(err)
	}
	for _, name := range []string{"Conference", "Talk", "Speaker"} {
		rep := pgschema.CheckType(s, name, pgschema.SatOptions{})
		fmt.Printf("  %-11s %s via %s", name, rep.Verdict, rep.Method)
		if rep.Witness != nil {
			fmt.Printf(" — witness: %d nodes, %d edges", rep.Witness.NumNodes(), rep.Witness.NumEdges())
			// The witness really does satisfy the schema:
			res := pgschema.ValidateGraph(s, rep.Witness, pgschema.ValidateOptions{})
			fmt.Printf(" (revalidated: ok=%v)", res.OK())
		}
		fmt.Println()
	}

	// Edge-definition satisfiability (§6.2's closing remark).
	fmt.Println("\nedge-definition satisfiability:")
	repF := pgschema.CheckField(s, "Talk", "speaker", pgschema.SatOptions{})
	fmt.Printf("  Talk.speaker: %s (%s)\n", repF.Verdict, repF.Method)
}
