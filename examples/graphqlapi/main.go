// Graphqlapi completes the paper's §3.6 outlook end to end: a Property
// Graph schema is extended into a GraphQL API schema, a conformant graph
// is generated, and GraphQL queries are executed directly against the
// graph — including the bidirectional traversal the paper notes plain
// PG schemas cannot offer. It then stands up the full HTTP service and
// drives the validation endpoints: a full run via POST /validate, an
// incremental run via POST /revalidate after a mutation, and the
// operational counters via GET /metrics.
//
// Run with: go run ./examples/graphqlapi
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"

	"pgschema"
)

const sdl = `
type Band @key(fields: ["name"]) {
	name: String! @required
	member(role: String, since: Int): [Musician] @distinct
}
type Musician @key(fields: ["name"]) {
	name: String! @required
	plays: [Instrument] @distinct
}
type Instrument @key(fields: ["label"]) {
	label: String! @required
}`

func main() {
	s, err := pgschema.ParseSchema(sdl)
	if err != nil {
		log.Fatal(err)
	}

	// The generated API schema (printed for reference).
	api, err := pgschema.ExtendToAPISchema(s, pgschema.APIOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== API schema ===")
	fmt.Println(api)

	// A small music graph.
	g := pgschema.NewGraph()
	band := g.AddNode("Band")
	g.SetNodeProp(band, "name", pgschema.String("The Schemas"))
	node := func(label, key, name string) pgschema.NodeID {
		n := g.AddNode(label)
		g.SetNodeProp(n, key, pgschema.String(name))
		return n
	}
	ada := node("Musician", "name", "Ada")
	bob := node("Musician", "name", "Bob")
	cleo := node("Musician", "name", "Cleo")
	bass := node("Instrument", "label", "bass")
	drums := node("Instrument", "label", "drums")
	keys := node("Instrument", "label", "keys")

	addMember := func(m pgschema.NodeID, role string, since int64) {
		e := g.MustAddEdge(band, m, "member")
		g.SetEdgeProp(e, "role", pgschema.String(role))
		g.SetEdgeProp(e, "since", pgschema.Int(since))
	}
	addMember(ada, "lead", 2019)
	addMember(bob, "rhythm", 2021)
	addMember(cleo, "lead", 2022)
	g.MustAddEdge(ada, bass, "plays")
	g.MustAddEdge(ada, keys, "plays")
	g.MustAddEdge(bob, drums, "plays")
	g.MustAddEdge(cleo, keys, "plays")

	if res := pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{}); !res.OK() {
		log.Fatalf("graph invalid: %v", res.Violations)
	}

	queries := []struct{ title, q string }{
		{"keyed lookup with traversal", `{
			band(name: "The Schemas") {
				name
				member { name plays { label } }
			}
		}`},
		{"edge-property filter (§3.5 arguments as filters)", `{
			band(name: "The Schemas") {
				leads: member(role: "lead") { name }
				veterans: member(since: 2019) { name }
			}
		}`},
		{"bidirectional traversal (§3.6 inverse fields)", `{
			instrument(label: "keys") {
				label
				_playsOfMusician { name _memberOfBand { name } }
			}
		}`},
		{"listing with __typename", `{
			allInstruments { __typename label }
		}`},
	}
	for _, qc := range queries {
		out, err := pgschema.ExecuteQuery(s, g, qc.q)
		if err != nil {
			log.Fatalf("%s: %v", qc.title, err)
		}
		blob, _ := json.MarshalIndent(out, "", "  ")
		fmt.Printf("=== %s ===\n%s\n\n", qc.title, blob)
	}

	// The same schema and graph as an HTTP validation service.
	handler, err := pgschema.NewHTTPHandler(s, g, pgschema.ServerConfig{})
	if err != nil {
		log.Fatal(err)
	}
	srv := httptest.NewServer(handler)
	defer srv.Close()

	post := func(path, body string) string {
		res, err := http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		defer res.Body.Close()
		blob, _ := io.ReadAll(res.Body)
		return strings.TrimSpace(string(blob))
	}

	fmt.Println("=== POST /validate (full strong run) ===")
	fmt.Println(post("/validate", `{"workers": 2}`))
	fmt.Println()

	// Mutate the graph — a member edge duplicating an existing one
	// violates @distinct (DS1) — and revalidate just the delta.
	dup := g.MustAddEdge(band, ada, "member")
	fmt.Println("=== POST /revalidate (after adding a duplicate member edge) ===")
	fmt.Println(post("/revalidate", fmt.Sprintf(`{"edges": [%d]}`, dup)))
	fmt.Println()

	fmt.Println("=== GET /metrics (validation series) ===")
	res, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		log.Fatal(err)
	}
	defer res.Body.Close()
	blob, _ := io.ReadAll(res.Body)
	for _, line := range strings.Split(string(blob), "\n") {
		if strings.HasPrefix(line, "pgschema_validation_") {
			fmt.Println(line)
		}
	}
}
