// Interop demonstrates the two bridges out of the core proposal:
//
//  1. the §3.6 extension of a Property Graph schema into a GraphQL API
//     schema (query root type + inverse fields for bidirectional
//     traversal), and
//  2. the translation onto the baseline Property Graph schema model of
//     Angles (AMW 2018) from the paper's related work, with both
//     validators agreeing on the same graph.
//
// Run with: go run ./examples/interop
package main

import (
	"fmt"
	"log"

	"pgschema"
	"pgschema/internal/angles"
	"pgschema/internal/parser"
	"pgschema/internal/schema"
)

const sdl = `
type Author @key(fields: ["name"]) {
	name: String! @required
	wrote: [Book] @requiredForTarget
}
type Book {
	title: String! @required
	sequelOf: Book @uniqueForTarget
}`

func main() {
	s, err := pgschema.ParseSchema(sdl)
	if err != nil {
		log.Fatal(err)
	}

	// --- 1. GraphQL API schema extension (§3.6). ---
	api, err := pgschema.ExtendToAPISchema(s, pgschema.APIOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== generated GraphQL API schema (§3.6 extension) ===")
	fmt.Println(api)

	// --- 2. The Angles (2018) baseline. ---
	// The example schema lies in the translatable common fragment.
	doc, err := parser.Parse(sdl)
	if err != nil {
		log.Fatal(err)
	}
	formal, err := schema.Build(doc, schema.Options{})
	if err != nil {
		log.Fatal(err)
	}
	baseline, err := angles.Translate(formal)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("=== Angles baseline translation ===")
	for _, nt := range baseline.NodeTypes {
		fmt.Printf("node type %s: %d properties\n", nt.Label, len(nt.Props))
	}
	for _, et := range baseline.EdgeTypes {
		fmt.Printf("edge type (%s)-[%s]->(%s) out[%d..%d] in[%d..%d]\n",
			et.Source, et.Label, et.Target, et.MinOut, et.MaxOut, et.MinIn, et.MaxIn)
	}

	// Both validators judge the same graphs identically on this
	// fragment.
	g := pgschema.NewGraph()
	ada := g.AddNode("Author")
	g.SetNodeProp(ada, "name", pgschema.String("Ada"))
	b1 := g.AddNode("Book")
	g.SetNodeProp(b1, "title", pgschema.String("Notes, Vol. 1"))
	b2 := g.AddNode("Book")
	g.SetNodeProp(b2, "title", pgschema.String("Notes, Vol. 2"))
	g.MustAddEdge(ada, b1, "wrote")
	g.MustAddEdge(ada, b2, "wrote")
	g.MustAddEdge(b2, b1, "sequelOf")

	sdlRes := pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{})
	anglesRes := baseline.Validate(g)
	fmt.Printf("\nconformant graph:     SDL ok=%v, Angles ok=%v\n", sdlRes.OK(), len(anglesRes) == 0)

	// Break it: a book nobody wrote (DS4 / in-cardinality) and a second
	// sequelOf into b1 (DS3 / in-cardinality).
	orphan := g.AddNode("Book")
	g.SetNodeProp(orphan, "title", pgschema.String("Apocrypha"))
	g.MustAddEdge(orphan, b1, "sequelOf")
	sdlRes = pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{})
	anglesRes = baseline.Validate(g)
	fmt.Printf("after bad mutations:  SDL %d violations, Angles %d violations\n",
		len(sdlRes.Violations), len(anglesRes))
	for _, v := range sdlRes.Violations {
		fmt.Println("  SDL   ", v)
	}
	for _, v := range anglesRes {
		fmt.Println("  Angles", v)
	}
}
