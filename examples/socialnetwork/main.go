// Socialnetwork reproduces §3.4 (Examples 3.9–3.11): edges whose targets
// span several node types via union types and — equivalently — interface
// types, and edges with multiple source types; plus the Appendix Figure 1
// star-wars schema parsed under the full SDL grammar.
//
// Run with: go run ./examples/socialnetwork
package main

import (
	"fmt"
	"log"

	"pgschema"
)

// Examples 3.9 and 3.11 combined: union-typed targets and two source
// types for the owner edge.
const unionSDL = `
type Person {
	name: String! @required
	favoriteFood: Food
}
union Food = Pizza | Pasta
type Pizza {
	name: String! @required
	toppings: [String!]!
}
type Pasta {
	name: String! @required
}
type Car {
	brand: String! @required
	owner: Person
}
type Motorcycle {
	brand: String! @required
	owner: Person
}`

// Example 3.10: the interface formulation, which captures exactly the
// same restrictions.
const interfaceSDL = `
type Person {
	name: String! @required
	favoriteFood: Food
}
interface Food {
	name: String!
}
type Pizza implements Food {
	name: String! @required
	toppings: [String!]!
}
type Pasta implements Food {
	name: String! @required
}`

// Appendix Figure 1 (verbatim, including the root operation types the
// Property Graph interpretation ignores per §3.6).
const figure1 = `
type Starship {
	id: ID!
	name: String
	length(unit: LenUnit = METER): Float
}
enum LenUnit { METER FEET }
interface Character {
	id: ID!
	name: String
	friends: [Character]
}
type Human implements Character {
	id: ID!
	name: String
	friends: [Character]
	starships: [Starship]
}
type Droid implements Character {
	id: ID!
	name: String
	friends: [Character]
	primaryFunction: String!
}
type Query {
	hero(episode: Episode): Character
	search(text: String): [SearchResult]
}
enum Episode { NEWHOPE EMPIRE JEDI }
union SearchResult = Human | Droid | Starship
schema {
	query: Query
}`

func main() {
	union, err := pgschema.ParseSchema(unionSDL)
	if err != nil {
		log.Fatal(err)
	}
	iface, err := pgschema.ParseSchema(interfaceSDL)
	if err != nil {
		log.Fatal(err)
	}

	// Build the same graph twice; the two schemas accept and reject the
	// same graphs (§3.4: "two different options that serve the exact
	// same purpose").
	build := func() *pgschema.Graph {
		g := pgschema.NewGraph()
		olaf := g.AddNode("Person")
		g.SetNodeProp(olaf, "name", pgschema.String("Olaf"))
		pizza := g.AddNode("Pizza")
		g.SetNodeProp(pizza, "name", pgschema.String("Margherita"))
		g.SetNodeProp(pizza, "toppings", pgschema.List(pgschema.String("basil")))
		g.MustAddEdge(olaf, pizza, "favoriteFood")
		jan := g.AddNode("Person")
		g.SetNodeProp(jan, "name", pgschema.String("Jan"))
		pasta := g.AddNode("Pasta")
		g.SetNodeProp(pasta, "name", pgschema.String("Carbonara"))
		g.MustAddEdge(jan, pasta, "favoriteFood")
		return g
	}

	okGraph := build()
	fmt.Println("union vs interface formulation on the same graphs:")
	compare(union, iface, okGraph, "conformant graph")

	badGraph := build()
	p := badGraph.NodesLabeled("Person")[0]
	badGraph.MustAddEdge(badGraph.NodesLabeled("Person")[1], p, "favoriteFood") // Person is no Food
	compare(union, iface, badGraph, "favoriteFood pointing at a Person (WS3)")

	// Example 3.11: multiple source types for the same edge label.
	g := build()
	car := g.AddNode("Car")
	g.SetNodeProp(car, "brand", pgschema.String("Volvo"))
	moto := g.AddNode("Motorcycle")
	g.SetNodeProp(moto, "brand", pgschema.String("Husqvarna"))
	g.MustAddEdge(car, g.NodesLabeled("Person")[0], "owner")
	g.MustAddEdge(moto, g.NodesLabeled("Person")[1], "owner")
	res := pgschema.ValidateGraph(union, g, pgschema.ValidateOptions{})
	fmt.Printf("owner edges from Car and Motorcycle: ok=%v\n", res.OK())

	// Figure 1: full GraphQL schema including root operations.
	sw, err := pgschema.ParseSchema(figure1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nFigure 1 parses: %d object types (root Query included as an ordinary type)\n",
		len(sw.ObjectTypes()))
	swg := pgschema.NewGraph()
	luke := swg.AddNode("Human")
	swg.SetNodeProp(luke, "id", pgschema.ID("1000"))
	swg.SetNodeProp(luke, "name", pgschema.String("Luke Skywalker"))
	r2 := swg.AddNode("Droid")
	swg.SetNodeProp(r2, "id", pgschema.ID("2001"))
	swg.SetNodeProp(r2, "primaryFunction", pgschema.String("Astromech"))
	swg.MustAddEdge(luke, r2, "friends")
	swg.MustAddEdge(r2, luke, "friends")
	falcon := swg.AddNode("Starship")
	swg.SetNodeProp(falcon, "id", pgschema.ID("3000"))
	swg.SetNodeProp(falcon, "name", pgschema.String("Millennium Falcon"))
	swg.MustAddEdge(luke, falcon, "starships")
	res = pgschema.ValidateGraph(sw, swg, pgschema.ValidateOptions{})
	fmt.Printf("star-wars graph: ok=%v\n", res.OK())
	for _, v := range res.Violations {
		fmt.Println("   ", v)
	}
}

func compare(union, iface *pgschema.Schema, g *pgschema.Graph, title string) {
	u := pgschema.ValidateGraph(union, g, pgschema.ValidateOptions{})
	i := pgschema.ValidateGraph(iface, g, pgschema.ValidateOptions{})
	agree := "AGREE"
	if u.OK() != i.OK() {
		agree = "DISAGREE (bug!)"
	}
	fmt.Printf("  %-48s union ok=%-5v interface ok=%-5v %s\n", title, u.OK(), i.OK(), agree)
}
