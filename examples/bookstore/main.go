// Bookstore reproduces Examples 3.6–3.8 and the cardinality table of
// §3.3: all four relationship cardinality classes (1:1, 1:N, N:1, N:M),
// @distinct, @noLoops, @uniqueForTarget, and @requiredForTarget.
//
// Run with: go run ./examples/bookstore
package main

import (
	"fmt"
	"log"

	"pgschema"
)

// The schema of Example 3.6 with the refinements of Examples 3.7/3.8.
const sdl = `
type Author {
	favoriteBook: Book
	relatedAuthor: [Author] @distinct @noLoops
}
type Book {
	title: String!
	author: [Author] @required @distinct
}
type BookSeries {
	contains: [Book] @required @uniqueForTarget
}
type Publisher {
	published: [Book] @uniqueForTarget @requiredForTarget
}`

func main() {
	s, err := pgschema.ParseSchema(sdl)
	if err != nil {
		log.Fatal(err)
	}

	// A small conforming bookstore.
	g := pgschema.NewGraph()
	tolkien := g.AddNode("Author")
	lewis := g.AddNode("Author")
	hobbit := book(g, "The Hobbit")
	narnia := book(g, "The Lion, the Witch and the Wardrobe")
	g.MustAddEdge(hobbit, tolkien, "author")
	g.MustAddEdge(narnia, lewis, "author")
	g.MustAddEdge(tolkien, hobbit, "favoriteBook")
	g.MustAddEdge(tolkien, lewis, "relatedAuthor")
	g.MustAddEdge(lewis, tolkien, "relatedAuthor")
	allen := g.AddNode("Publisher")
	g.MustAddEdge(allen, hobbit, "published")
	g.MustAddEdge(allen, narnia, "published")
	middleEarth := g.AddNode("BookSeries")
	g.MustAddEdge(middleEarth, hobbit, "contains")

	check(s, g, "conforming bookstore")

	// §3.3's table, demonstrated by violation:
	// N:1 — "contains" is [Book] @uniqueForTarget: a second series
	// containing the Hobbit breaks DS3.
	scenario(s, g, "second series containing the same book (DS3)", func(g *pgschema.Graph) {
		s2 := g.AddNode("BookSeries")
		g.MustAddEdge(s2, g.NodesLabeled("Book")[0], "contains")
	})

	// 1:N — "favoriteBook" is non-list: two favorites break WS4.
	scenario(s, g, "two favorite books (WS4)", func(g *pgschema.Graph) {
		a := g.NodesLabeled("Author")[0]
		g.MustAddEdge(a, g.NodesLabeled("Book")[1], "favoriteBook")
	})

	// Participation — every Book needs an author edge (DS6) and an
	// incoming published edge (DS4).
	scenario(s, g, "book without author or publisher (DS4+DS6)", func(g *pgschema.Graph) {
		book(g, "Orphaned Manuscript")
	})

	// @distinct (Example 3.7): duplicate author edges.
	scenario(s, g, "duplicate author edge (DS1)", func(g *pgschema.Graph) {
		b := g.NodesLabeled("Book")[0]
		g.MustAddEdge(b, g.NodesLabeled("Author")[0], "author")
	})

	// @noLoops (Example 3.7): an author related to themselves.
	scenario(s, g, "self-related author (DS2)", func(g *pgschema.Graph) {
		a := g.NodesLabeled("Author")[0]
		g.MustAddEdge(a, a, "relatedAuthor")
	})

	// Satisfiability of every type in the schema.
	fmt.Println("\nobject-type satisfiability (§6.2):")
	for _, td := range s.ObjectTypes() {
		rep := pgschema.CheckType(s, td.Name, pgschema.SatOptions{})
		fmt.Printf("  %-12s %s (%s)\n", td.Name, rep.Verdict, rep.Method)
	}
}

func book(g *pgschema.Graph, title string) pgschema.NodeID {
	b := g.AddNode("Book")
	g.SetNodeProp(b, "title", pgschema.String(title))
	return b
}

func check(s *pgschema.Schema, g *pgschema.Graph, title string) {
	res := pgschema.ValidateGraph(s, g, pgschema.ValidateOptions{})
	fmt.Printf("%-50s ok=%v\n", title, res.OK())
	for _, v := range res.Violations {
		fmt.Println("   ", v)
	}
}

// scenario runs a mutation against a clone so scenarios stay independent.
func scenario(s *pgschema.Schema, g *pgschema.Graph, title string, mutate func(*pgschema.Graph)) {
	c := g.Clone()
	mutate(c)
	check(s, c, title)
}
