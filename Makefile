# Tier-1 gate: everything must build, vet clean, and pass the test
# suite under the race detector.
.PHONY: check build vet test race bench

check: build vet race

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

race:
	go test -race ./...

bench:
	go test -bench=. -benchmem -run=^$$ ./...
