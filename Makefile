# Tier-1 gate: everything must build, vet clean, pass the test suite
# under the race detector, and keep every validation engine in agreement
# (the differential harness runs under -race as part of `race`; the
# dedicated `differential` target re-runs just it, shuffled).
.PHONY: check build vet test race differential bench bench-fused

check: build vet race differential

build:
	go build ./...

vet:
	go vet ./...

test:
	go test -shuffle=on ./...

race:
	go test -race -shuffle=on ./...

# The engine-equivalence proof on its own: every engine configuration
# must emit the byte-identical violation set, raced and shuffled.
differential:
	go test -race -shuffle=on -run 'TestDifferential' -count=1 ./internal/validate/

bench:
	go test -bench=. -benchmem -run=^$$ ./...

# Fused-engine ablation: fused vs. rule-by-rule vs. naive pair scan.
# Emits benchstat-compatible output to BENCH_fused.json alongside the
# terminal stream.
bench-fused:
	go test -bench=BenchmarkAblationFused -benchmem -count=6 -run=^$$ . | tee BENCH_fused.json
