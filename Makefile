# Tier-1 gate: everything must build, vet clean, pass the test suite
# under the race detector, and keep every validation engine in agreement
# (the differential harness runs under -race as part of `race`; the
# dedicated `differential` target re-runs just it, shuffled).
.PHONY: check build vet test race differential bench bench-fused bench-compiled bench-scale bench-incremental bench-ingest bench-smoke scale-smoke stream-smoke

check: build vet race differential stream-smoke bench-smoke

build:
	go build ./...

vet:
	go vet ./...

test:
	go test -shuffle=on -timeout 10m ./...

race:
	go test -race -shuffle=on -timeout 10m ./...

# The engine-equivalence proof on its own: every engine configuration
# must emit the byte-identical violation set, raced and shuffled.
differential:
	go test -race -shuffle=on -timeout 10m -run 'TestDifferential' -count=1 ./internal/validate/

bench:
	go test -bench=. -benchmem -run=^$$ ./...

# One iteration of every benchmark — catches benchmarks that no longer
# compile or fail their own assertions, without measuring anything.
bench-smoke:
	go test -bench=. -benchtime=1x -run=^$$ .

# Fused-engine ablation: fused vs. rule-by-rule vs. naive pair scan.
# Emits benchstat-compatible output to BENCH_fused.json alongside the
# terminal stream.
bench-fused:
	go test -bench=BenchmarkAblationFused -benchmem -count=6 -run=^$$ . | tee BENCH_fused.json

# Compiled-program ablation: precompiled program (cross-run symbol
# tables + binding reuse) vs. compile-on-the-fly fused runs vs. the
# rule-by-rule engine, at 300/1000/5000 nodes per type.
bench-compiled:
	go test -bench=BenchmarkCompiledReuse -benchmem -count=6 -run=^$$ . | tee BENCH_compiled.json

# E10 — incremental revalidation: full vs delta-aware runs at ~0.1%
# and ~1% mutation batches over a ~10⁶-element graph, driven through the
# transactional Apply → Revalidate → Undo round trip.
bench-incremental:
	go test -bench=BenchmarkIncremental -benchmem -count=3 -timeout=45m -run=^$$ . | tee BENCH_incremental.json

# Million-element scaling: compiled fused validation at ~10⁵ and ~10⁶
# graph elements across 1/2/4/8 workers, plus CSV loader throughput.
bench-scale:
	go test -bench='BenchmarkScale|BenchmarkLoadCSV' -benchmem -count=3 -timeout=45m -run=^$$ . | tee BENCH_scale.json

# E11 — ingestion: the streaming columnar loader vs the two-phase
# ReadCSV path, bare and with the first validation pass fused in, at
# ~10⁵ and ~10⁶ elements.
bench-ingest:
	go test -bench=BenchmarkIngest -benchmem -count=3 -timeout=45m -run=^$$ . | tee BENCH_ingest.json

# The 10⁵-element parallel validation smoke on its own, race-detected.
# Also runs as part of `race` (and thus `check`) with the full suite.
scale-smoke:
	go test -race -run 'TestScaleSmokeParallel' -count=1 ./internal/validate/

# Streaming ingest smoke: validate-on-ingest over a mid-size generated
# graph plus the streamed/two-phase loader differential, race-detected.
# Also runs as part of `race` (and thus `check`) with the full suite.
stream-smoke:
	go test -race -run 'TestStreamValidateSmoke|TestReadCSVStreamMatchesReadCSV' -count=1 ./internal/validate/ ./internal/pg/
