# Tier-1 gate: everything must build, vet clean, pass the test suite
# under the race detector, and keep every validation engine in agreement
# (the differential harness runs under -race as part of `race`; the
# dedicated `differential` target re-runs just it, shuffled).
.PHONY: check build vet test race api-golden differential fuzz-smoke fuzz-snapshot-smoke bench bench-fused bench-compiled bench-scale bench-scale-smoke bench-incremental bench-ingest bench-query bench-smoke bench-snapshot bench-snapshot-smoke scale-smoke scale-differential stream-smoke snapshot-differential clean

check: build vet race api-golden differential scale-differential snapshot-differential fuzz-smoke stream-smoke bench-smoke bench-scale-smoke bench-snapshot-smoke

build:
	go build ./...

vet:
	go vet ./...

test:
	go test -shuffle=on -timeout 10m ./...

race:
	go test -race -shuffle=on -timeout 10m ./...

# API-surface regression: replay the checked-in request corpus in
# internal/server/testdata/api against a fresh handler per case and
# compare responses byte-for-byte (wall-clock fields normalized). Any
# drift in an envelope, status code, error message, or field name fails
# here; run with -update-api-golden after an intended change.
api-golden:
	go test -run 'TestAPIGolden|TestLegacyRoutesByteIdentical' -count=1 ./internal/server/

# The engine-equivalence proofs on their own: every validation engine
# configuration must emit the byte-identical violation set, and the
# compiled query engine must agree byte-for-byte with the tree-walking
# executor across randomized schemas, graphs, queries, and mutations —
# raced and shuffled.
differential:
	go test -race -shuffle=on -timeout 10m -run 'TestDifferential' -count=1 ./internal/validate/ ./internal/query/

# A short coverage-guided run of the query-parser fuzz target: any input
# must parse or error (never panic), and every parsed document must
# compile into a plan.
fuzz-smoke:
	go test -run '^$$' -fuzz FuzzParse -fuzztime 10s ./internal/query/

bench:
	go test -bench=. -benchmem -run=^$$ ./...

# One iteration of every benchmark — catches benchmarks that no longer
# compile or fail their own assertions, without measuring anything.
bench-smoke:
	go test -bench=. -benchtime=1x -run=^$$ .

# Fused-engine ablation: fused vs. rule-by-rule vs. naive pair scan.
# Emits benchstat-compatible output to BENCH_fused.json alongside the
# terminal stream.
bench-fused:
	go test -bench=BenchmarkAblationFused -benchmem -count=6 -run=^$$ . | tee BENCH_fused.json

# Compiled-program ablation: precompiled program (cross-run symbol
# tables + binding reuse) vs. compile-on-the-fly fused runs vs. the
# rule-by-rule engine, at 300/1000/5000 nodes per type.
bench-compiled:
	go test -bench=BenchmarkCompiledReuse -benchmem -count=6 -run=^$$ . | tee BENCH_compiled.json

# E10 — incremental revalidation: full vs delta-aware runs at ~0.1%
# and ~1% mutation batches over a ~10⁶-element graph, driven through the
# transactional Apply → Revalidate → Undo round trip.
bench-incremental:
	go test -bench=BenchmarkIncremental -benchmem -count=3 -timeout=45m -run=^$$ . | tee BENCH_incremental.json

# Million-element scaling: compiled fused validation at ~10⁵ and ~10⁶
# graph elements across 1/2/4/8 workers, plus CSV loader throughput.
bench-scale:
	go test -bench='BenchmarkScale|BenchmarkLoadCSV' -benchmem -count=3 -timeout=45m -run=^$$ . | tee BENCH_scale.json

# E12 — query serving: compiled plans vs the interpretive executor over
# a ~10⁶-element graph — cold (compile per query) and cached (plan +
# epoch binding reused) — for a key lookup + traversal and a full scan.
bench-query:
	go test -bench=BenchmarkQueryEngine -benchmem -count=3 -timeout=45m -run=^$$ . | tee BENCH_query.json

# E11 — ingestion: the streaming columnar loader vs the two-phase
# ReadCSV path, bare and with the first validation pass fused in, at
# ~10⁵ and ~10⁶ elements.
bench-ingest:
	go test -bench=BenchmarkIngest -benchmem -count=3 -timeout=45m -run=^$$ . | tee BENCH_ingest.json

# Quick mode of the scaling benchmark: one iteration of BenchmarkScale,
# enough to catch a benchmark that no longer compiles or trips its own
# assertions (worker counts, telemetry fields) without measuring.
bench-scale-smoke:
	go test -bench=BenchmarkScale -benchtime=1x -run=^$$ .

# The 10⁵-element parallel validation smoke on its own, race-detected.
# Also runs as part of `race` (and thus `check`) with the full suite.
scale-smoke:
	go test -race -run 'TestScaleSmokeParallel' -count=1 ./internal/validate/

# The scaling differentials explicitly under the race detector: parallel
# validation (work-stealing, element sharding, skewed violations) and
# the parallel root-scan query path must be byte-identical to their
# sequential counterparts, plus the scheduler-telemetry invariants and
# the parallel allocation budget. Subsumed by `race` but kept as its own
# gate in `check` so a scaling regression names itself.
scale-differential:
	go test -race -shuffle=on -count=1 \
		-run 'TestDifferentialLargeGraphWorkStealing|TestDifferentialSkewedViolations|TestSchedStats|TestParallelAllocBudget|TestParallelCancellationNoLeak' \
		./internal/validate/
	go test -race -shuffle=on -count=1 -run 'TestDifferentialParallelScan' ./internal/query/

# Streaming ingest smoke: validate-on-ingest over a mid-size generated
# graph plus the streamed/two-phase loader differential, race-detected.
# Also runs as part of `race` (and thus `check`) with the full suite.
stream-smoke:
	go test -race -run 'TestStreamValidateSmoke|TestReadCSVStreamMatchesReadCSV' -count=1 ./internal/validate/ ./internal/pg/

# The .pgsnap differential under the race detector: validation over a
# memory-mapped snapshot must be byte-identical to the heap-resident
# graph across every engine configuration and mode, the file round trip
# must reproduce the snapshot exactly (including the copy-on-write
# Apply path and the corruption table), and the cold→inflated handoff
# must be race-free under concurrent readers.
snapshot-differential:
	go test -race -shuffle=on -count=1 \
		-run 'TestMappedSnapshot|TestSnapshotFile|TestMappedApply|TestColdReaders|TestColdConcurrent|TestOpenSnapshot' \
		./internal/validate/ ./internal/pg/

# A short coverage-guided run of the .pgsnap opener fuzz target: any
# byte string must open (and then survive a full read of every column)
# or error with a diagnostic — never panic, never read out of bounds.
fuzz-snapshot-smoke:
	go test -run '^$$' -fuzz FuzzOpenSnapshot -fuzztime 10s ./internal/pg/

# E14 — durable snapshots: WriteGraphSnapshot/OpenGraphSnapshot against
# the streaming CSV loader (cold-start latency) and mapped vs heap
# first-validation cost, at ~10⁵ and ~10⁶ elements.
bench-snapshot:
	go test -bench=BenchmarkSnapshot -benchmem -count=3 -timeout=45m -run=^$$ . | tee BENCH_snapshot.json

# One iteration of the snapshot benchmark — asserts the save/open/
# validate round trip works at both sizes without measuring.
bench-snapshot-smoke:
	go test -bench=BenchmarkSnapshot -benchtime=1x -run=^$$ .

# Remove build and benchmark byproducts (compiled test binaries, CPU
# profiles); the checked-in BENCH_*.json measurement artifacts are kept.
clean:
	rm -f *.test */*.test *.prof *.out.tmp
	go clean ./...
