// Command pgschema is the command-line front end to the library: it
// parses and formats SDL schemas, checks their consistency, validates
// Property Graphs against them, decides object-type satisfiability,
// generates conformant graphs, extends schemas into GraphQL APIs (and
// serves them over HTTP), exports proprietary DDL, runs GraphQL queries,
// and emits Theorem 2 reduction schemas from DIMACS CNF files.
//
// Usage:
//
//	pgschema fmt      <schema.graphql>
//	pgschema check    <schema.graphql>
//	pgschema validate <schema.graphql> <graph.json|nodes.csv,edges.csv> [-mode strong|weak|directives] [-max N] [-workers N] [-engine auto|fused|rule-by-rule] [-ingest stream|two-phase] [-compile-stats]
//	pgschema sat      <schema.graphql> <TypeName> [-max-nodes N] [-witness FILE]
//	pgschema generate <schema.graphql> [-nodes N] [-seed N]
//	pgschema api      <schema.graphql> [-no-inverse] [-keep-directives]
//	pgschema export   <schema.graphql> [-format cypher|gsql] [-graph NAME]
//	pgschema query    <schema.graphql> <graph.json> <query-or-@file> [-op NAME]
//	pgschema serve    <schema.graphql> <graph.json> [-addr :8080] [-pprof] [-snapshot-dir DIR] [-tenant name:schema[:graph]]... [-mem-budget N]
//	pgschema snapshot save <graph> <out.pgsnap> | load|info|verify <file.pgsnap>
//	pgschema reduce   <formula.cnf>
//	pgschema stats    <graph.json>
//
// Graph arguments accept graph.json, nodes.csv,edges.csv pairs, and
// .pgsnap binary snapshots (memory-mapped; see the snapshot command).
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"pgschema/internal/apigen"
	"pgschema/internal/cnf"
	"pgschema/internal/ddl"
	"pgschema/internal/gen"
	"pgschema/internal/parser"
	"pgschema/internal/pg"
	"pgschema/internal/printer"
	"pgschema/internal/query"
	"pgschema/internal/reduction"
	"pgschema/internal/sat"
	"pgschema/internal/schema"
	"pgschema/internal/server"
	"pgschema/internal/validate"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "fmt":
		err = cmdFmt(os.Args[2:])
	case "check":
		err = cmdCheck(os.Args[2:])
	case "validate":
		err = cmdValidate(os.Args[2:])
	case "sat":
		err = cmdSat(os.Args[2:])
	case "generate":
		err = cmdGenerate(os.Args[2:])
	case "api":
		err = cmdAPI(os.Args[2:])
	case "export":
		err = cmdExport(os.Args[2:])
	case "query":
		err = cmdQuery(os.Args[2:])
	case "serve":
		err = cmdServe(os.Args[2:])
	case "snapshot":
		err = cmdSnapshot(os.Args[2:])
	case "reduce":
		err = cmdReduce(os.Args[2:])
	case "stats":
		err = cmdStats(os.Args[2:])
	case "help", "-h", "--help":
		usage()
	default:
		fmt.Fprintf(os.Stderr, "pgschema: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "pgschema:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `pgschema — GraphQL SDL schemas for Property Graphs

commands:
  fmt      <schema>                 parse and print the schema canonically
  check    <schema>                 verify schema consistency (Defs. 4.3-4.5)
  validate <schema> <graph>         check strong satisfaction (Defs. 5.1-5.3)
                                    <graph> is graph.json or nodes.csv,edges.csv
      -mode strong|weak|directives  satisfaction notion (default strong)
      -max N                        stop after N violations
      -workers N                    parallel validation workers (0 = auto)
      -engine auto|fused|rule-by-rule
                                    evaluation engine (default auto = fused)
      -ingest stream|two-phase      CSV loading: fused validate-on-ingest
                                    (default) or load-then-validate
      -compile-stats                print compiled-program statistics to stderr
  sat      <schema> <Type>          decide object-type satisfiability (§6.2)
      -max-nodes N                  bound for the finite-model search
      -witness FILE                 write the witness graph as JSON
  generate <schema>                 emit a conformant graph as JSON
      -nodes N -seed N
  api      <schema>                 §3.6: extend into a GraphQL API schema
      -no-inverse                   omit bidirectional traversal fields
      -keep-directives              keep @required/@key/... annotations
  export   <schema>                 emit proprietary DDL (§2.1 systems)
      -format cypher|gsql           target dialect (default cypher)
      -graph NAME                   GSQL graph name
  query    <schema> <graph.json> <query-string-or-@file>
                                    run a GraphQL query over the graph
      -op NAME                      operation to execute
  serve    <schema> <graph>         GraphQL HTTP endpoint over the graph
                                    (hosted as tenant "default"; manage more
                                    via PUT/GET/DELETE /tenants/{name})
      -addr :8080                   listen address
      -pprof                        mount net/http/pprof under /debug/pprof/
      -snapshot-dir DIR             persist DIR/<tenant>.pgsnap after each
                                    /graph/apply; resume from them on restart
                                    (legacy DIR/graph.pgsnap still read)
      -tenant name:schema[:graph]   host an extra tenant (repeatable)
      -mem-budget N                 evict cold tenant snapshots past N bytes
  snapshot save <graph> <out.pgsnap>
                                    write the mmap-able binary snapshot
  snapshot load|info <file.pgsnap> [-verify]
                                    open a snapshot and report its contents
  snapshot verify <file.pgsnap>     checksum + deep-validate a snapshot
  reduce   <formula.cnf>            Theorem 2: DIMACS CNF -> schema SDL
  stats    <graph.json>             graph statistics

graph arguments: graph.json | nodes.csv,edges.csv | file.pgsnap
`)
}

func loadSchema(path string) (*schema.Schema, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	doc, err := parser.Parse(string(src))
	if err != nil {
		return nil, err
	}
	return schema.Build(doc, schema.Options{})
}

// loadGraph reads a graph argument: a JSON file, a CSV pair given as
// "nodes.csv,edges.csv" (two paths joined by a comma), or a .pgsnap
// binary snapshot (memory-mapped — load time is independent of graph
// size). opts apply only to the .pgsnap path.
func loadGraph(path string, opts ...pg.OpenOption) (*pg.Graph, error) {
	if nodesPath, edgesPath, ok := strings.Cut(path, ","); ok {
		return loadGraphCSV(nodesPath, edgesPath, true)
	}
	if strings.HasSuffix(path, ".pgsnap") {
		return pg.OpenSnapshot(path, opts...)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return pg.ReadJSON(f)
}

func fileExists(path string) bool {
	st, err := os.Stat(path)
	return err == nil && st.Mode().IsRegular()
}

// saveSnapshot writes the graph's snapshot to path atomically: the
// bytes go to a temp file in the same directory, fsynced, then renamed
// over the target so a crash never leaves a torn .pgsnap behind.
func saveSnapshot(g *pg.Graph, path string) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".pgsnap-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := pg.WriteSnapshot(tmp, g.Snapshot()); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// loadGraphCSV opens a nodes/edges CSV pair and loads it with either
// the streaming columnar builder or the legacy two-phase loader.
func loadGraphCSV(nodesPath, edgesPath string, stream bool) (*pg.Graph, error) {
	nf, err := os.Open(nodesPath)
	if err != nil {
		return nil, err
	}
	defer nf.Close()
	ef, err := os.Open(edgesPath)
	if err != nil {
		return nil, err
	}
	defer ef.Close()
	if stream {
		return pg.ReadCSVStream(nf, ef)
	}
	return pg.ReadCSV(nf, ef)
}

func cmdFmt(args []string) error {
	fs := flag.NewFlagSet("fmt", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("fmt: want one schema file")
	}
	src, err := os.ReadFile(fs.Arg(0))
	if err != nil {
		return err
	}
	doc, err := parser.Parse(string(src))
	if err != nil {
		return err
	}
	fmt.Print(printer.Print(doc))
	return nil
}

func cmdCheck(args []string) error {
	fs := flag.NewFlagSet("check", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("check: want one schema file")
	}
	s, err := loadSchema(fs.Arg(0))
	if err != nil {
		return err
	}
	objs := len(s.ObjectTypes())
	fmt.Printf("schema is consistent: %d object types, %d interfaces, %d unions\n",
		objs, len(s.InterfaceTypes()), len(s.UnionTypes()))
	return nil
}

func cmdValidate(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ExitOnError)
	mode := fs.String("mode", "strong", "satisfaction notion")
	max := fs.Int("max", 0, "maximum violations to report (0 = all)")
	workers := fs.Int("workers", 0, "parallel workers (0 = autotune from graph size)")
	engine := fs.String("engine", "auto", "evaluation engine: auto, fused, or rule-by-rule")
	ingest := fs.String("ingest", "stream", "CSV ingestion path: stream (fused validate-on-ingest) or two-phase")
	compileStats := fs.Bool("compile-stats", false, "print compiled-program statistics to stderr")
	schedStats := fs.Bool("sched-stats", false, "print scheduler telemetry (chunks, steals, per-worker busy) to stderr")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("validate: want schema and graph files")
	}
	if *ingest != "stream" && *ingest != "two-phase" {
		return fmt.Errorf("validate: unknown ingest path %q", *ingest)
	}
	s, err := loadSchema(fs.Arg(0))
	if err != nil {
		return err
	}
	opts := validate.Options{MaxViolations: *max, Workers: *workers, SchedStats: *schedStats}
	switch *mode {
	case "strong":
		opts.Mode = validate.Strong
	case "weak":
		opts.Mode = validate.Weak
	case "directives":
		opts.Mode = validate.Directives
	default:
		return fmt.Errorf("validate: unknown mode %q", *mode)
	}
	switch *engine {
	case "auto":
		opts.Engine = validate.EngineAuto
	case "fused":
		opts.Engine = validate.EngineFused
	case "rule-by-rule":
		opts.Engine = validate.EngineRuleByRule
	default:
		return fmt.Errorf("validate: unknown engine %q", *engine)
	}
	prog := validate.Compile(s)
	opts.Program = prog
	if *compileStats {
		st := prog.Stats()
		fmt.Fprintf(os.Stderr, "compiled program: %d types, %d interned names, %d field slots, %d obligations (%s)\n",
			st.Types, st.Names, st.Fields, st.Obligations, st.CompileTime)
	}
	var g *pg.Graph
	var res *validate.Result
	if nodesPath, edgesPath, ok := strings.Cut(fs.Arg(1), ","); ok && *ingest == "stream" {
		// CSV pair: fuse the load and the first validation pass — the
		// streamed columns are validated without a second materialization.
		nf, err := os.Open(nodesPath)
		if err != nil {
			return err
		}
		defer nf.Close()
		ef, err := os.Open(edgesPath)
		if err != nil {
			return err
		}
		defer ef.Close()
		res, g, err = validate.ValidateStream(context.Background(), s, nf, ef, opts)
		if err != nil {
			return err
		}
	} else {
		var err error
		if nodesPath, edgesPath, ok := strings.Cut(fs.Arg(1), ","); ok {
			g, err = loadGraphCSV(nodesPath, edgesPath, false)
		} else {
			g, err = loadGraph(fs.Arg(1))
		}
		if err != nil {
			return err
		}
		res = validate.Validate(s, g, opts)
	}
	if *compileStats {
		fmt.Fprintf(os.Stderr, "validation: %d elements, %d workers\n",
			g.NodeBound()+g.EdgeBound(), opts.EffectiveWorkers(g.NodeBound()+g.EdgeBound()))
	}
	if *schedStats {
		if st := res.Sched; st != nil {
			fmt.Fprintf(os.Stderr, "scheduler: %d workers, %d chunks, %d steals, wall %s, busy %s (efficiency %.2f), max chunk %s\n",
				st.Workers, st.Chunks, st.Steals, st.Wall, st.Busy, st.Efficiency(), st.MaxChunk)
			for i := range st.PerWorker {
				pw := &st.PerWorker[i]
				fmt.Fprintf(os.Stderr, "  worker %d: %d chunks (%d stolen), busy %s, max chunk %s\n",
					i, pw.Chunks, pw.Steals, pw.Busy, pw.MaxChunk)
			}
		} else {
			fmt.Fprintln(os.Stderr, "scheduler: no telemetry (engine did not run the chunk scheduler)")
		}
	}
	if res.OK() {
		fmt.Printf("graph (%d nodes, %d edges) satisfies the schema (%s)\n", g.NumNodes(), g.NumEdges(), *mode)
		return nil
	}
	for _, v := range res.Violations {
		fmt.Println(v)
	}
	suffix := ""
	if res.Truncated {
		suffix = " (truncated)"
	}
	return fmt.Errorf("%d violations%s", len(res.Violations), suffix)
}

func cmdSat(args []string) error {
	fs := flag.NewFlagSet("sat", flag.ExitOnError)
	maxNodes := fs.Int("max-nodes", 6, "finite-model search bound")
	witness := fs.String("witness", "", "write witness graph JSON to this file")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("sat: want schema file and type name")
	}
	s, err := loadSchema(fs.Arg(0))
	if err != nil {
		return err
	}
	rep := sat.Check(s, fs.Arg(1), sat.Options{MaxGraphNodes: *maxNodes})
	fmt.Printf("%s: %s (decided by %s)\n", rep.Type, rep.Verdict, rep.Method)
	if rep.Detail != "" {
		fmt.Println("  " + rep.Detail)
	}
	if rep.Witness != nil && *witness != "" {
		f, err := os.Create(*witness)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rep.Witness.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("  witness written to %s\n", *witness)
	}
	if rep.Verdict == sat.Unsatisfiable {
		return fmt.Errorf("type %s is unsatisfiable", fs.Arg(1))
	}
	return nil
}

func cmdGenerate(args []string) error {
	fs := flag.NewFlagSet("generate", flag.ExitOnError)
	nodes := fs.Int("nodes", 10, "nodes per object type")
	seed := fs.Int64("seed", 0, "generation seed")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("generate: want one schema file")
	}
	s, err := loadSchema(fs.Arg(0))
	if err != nil {
		return err
	}
	g, err := gen.Conformant(s, gen.Config{Seed: *seed, NodesPerType: *nodes})
	if err != nil {
		return err
	}
	return g.WriteJSON(os.Stdout)
}

func cmdAPI(args []string) error {
	fs := flag.NewFlagSet("api", flag.ExitOnError)
	noInverse := fs.Bool("no-inverse", false, "omit bidirectional traversal fields")
	keep := fs.Bool("keep-directives", false, "keep constraint directives")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("api: want one schema file")
	}
	s, err := loadSchema(fs.Arg(0))
	if err != nil {
		return err
	}
	sdl, err := apigen.ExtendSDL(s, apigen.Options{
		NoInverseFields:          *noInverse,
		KeepConstraintDirectives: *keep,
	})
	if err != nil {
		return err
	}
	fmt.Print(sdl)
	return nil
}

func cmdExport(args []string) error {
	fs := flag.NewFlagSet("export", flag.ExitOnError)
	format := fs.String("format", "cypher", "target dialect: cypher or gsql")
	graph := fs.String("graph", "pg", "GSQL graph name")
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("export: want one schema file")
	}
	s, err := loadSchema(fs.Arg(0))
	if err != nil {
		return err
	}
	switch *format {
	case "cypher":
		fmt.Print(ddl.Cypher(s))
	case "gsql":
		fmt.Print(ddl.GSQL(s, *graph))
	default:
		return fmt.Errorf("export: unknown format %q", *format)
	}
	return nil
}

func cmdQuery(args []string) error {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	op := fs.String("op", "", "operation name (for multi-operation documents)")
	fs.Parse(args)
	if fs.NArg() != 3 {
		return fmt.Errorf("query: want schema file, graph file, and a query (or @file)")
	}
	s, err := loadSchema(fs.Arg(0))
	if err != nil {
		return err
	}
	g, err := loadGraph(fs.Arg(1))
	if err != nil {
		return err
	}
	src := fs.Arg(2)
	if len(src) > 1 && src[0] == '@' {
		raw, err := os.ReadFile(src[1:])
		if err != nil {
			return err
		}
		src = string(raw)
	}
	doc, err := query.Parse(src)
	if err != nil {
		return err
	}
	out, err := query.Execute(s, g, doc, *op)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// repeatedFlag collects every occurrence of a repeatable string flag.
type repeatedFlag []string

func (f *repeatedFlag) String() string     { return strings.Join(*f, ", ") }
func (f *repeatedFlag) Set(v string) error { *f = append(*f, v); return nil }

// parseTenantSeed turns a -tenant spec "name:schema.graphql[:graph]"
// into a registry seed. When snapDir holds a snapshot persisted for the
// tenant by a previous run, it supersedes the graph argument — it
// carries every committed mutation and the epoch they advanced to.
func parseTenantSeed(spec, snapDir string) (server.TenantSeed, error) {
	parts := strings.SplitN(spec, ":", 3)
	if len(parts) < 2 || parts[0] == "" || parts[1] == "" {
		return server.TenantSeed{}, fmt.Errorf("serve: -tenant wants name:schema.graphql[:graph], got %q", spec)
	}
	seed := server.TenantSeed{Name: parts[0]}
	src, err := os.ReadFile(parts[1])
	if err != nil {
		return server.TenantSeed{}, fmt.Errorf("serve: tenant %q schema: %w", seed.Name, err)
	}
	seed.SDL = string(src)
	graphArg := ""
	if len(parts) == 3 {
		graphArg = parts[2]
	}
	if snapDir != "" {
		if p := filepath.Join(snapDir, server.TenantSnapshotFile(seed.Name)); fileExists(p) {
			fmt.Printf("resuming tenant %q from persisted snapshot %s\n", seed.Name, p)
			graphArg = p
		}
	}
	if graphArg != "" {
		g, err := loadGraph(graphArg)
		if err != nil {
			return server.TenantSeed{}, fmt.Errorf("serve: tenant %q graph: %w", seed.Name, err)
		}
		seed.Graph = g
	}
	return seed, nil
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8080", "listen address")
	reqTimeout := fs.Duration("timeout", 30*time.Second, "per-request handler timeout (0 disables)")
	maxInFlight := fs.Int("max-inflight", 1024, "concurrent request limit, excess sheds with 503 (0 = unlimited)")
	maxBody := fs.Int64("max-body", server.DefaultMaxBodyBytes, "request body size limit in bytes")
	quiet := fs.Bool("quiet", false, "disable access logging")
	pprofFlag := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (off by default)")
	snapDir := fs.String("snapshot-dir", "", "persist each tenant as DIR/<name>.pgsnap after its /graph/apply; on startup, resume from those files if present")
	memBudget := fs.Int64("mem-budget", 0, "memory budget in bytes for resident tenant snapshots; the coldest persisted tenants are evicted past it and reload from -snapshot-dir on demand (0 = unlimited)")
	var tenants repeatedFlag
	fs.Var(&tenants, "tenant", "host an extra tenant, name:schema.graphql[:graph] (repeatable); graph is graph.json, nodes.csv,edges.csv, or file.pgsnap")
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("serve: want schema and graph files")
	}
	s, err := loadSchema(fs.Arg(0))
	if err != nil {
		return err
	}
	cfg := server.Config{
		RequestTimeout: *reqTimeout,
		MaxInFlight:    *maxInFlight,
		MaxBodyBytes:   *maxBody,
		EnablePprof:    *pprofFlag,
		SnapshotDir:    *snapDir,
	}
	if !*quiet {
		cfg.AccessLog = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	graphArg := fs.Arg(1)
	if *snapDir != "" {
		if err := os.MkdirAll(*snapDir, 0o755); err != nil {
			return err
		}
		// Warm restart: a snapshot persisted by a previous run supersedes
		// the graph argument — it carries every committed mutation and
		// the epoch they advanced to. The pre-tenancy fixed file name is
		// still honored as the default tenant's snapshot.
		persisted := filepath.Join(*snapDir, server.TenantSnapshotFile(server.DefaultTenant))
		if !fileExists(persisted) {
			persisted = filepath.Join(*snapDir, server.SnapshotFileName)
		}
		if fileExists(persisted) {
			fmt.Printf("resuming from persisted snapshot %s\n", persisted)
			graphArg = persisted
		}
	}
	loadStart := time.Now()
	defaultSeed := server.TenantSeed{Name: server.DefaultTenant, Schema: s}
	if nodesPath, edgesPath, ok := strings.Cut(graphArg, ","); ok {
		// CSV pair: stream the graph in and validate it on ingest; the
		// full strong run seeds the /revalidate cache before serving.
		nf, err := os.Open(nodesPath)
		if err != nil {
			return err
		}
		defer nf.Close()
		ef, err := os.Open(edgesPath)
		if err != nil {
			return err
		}
		defer ef.Close()
		res, g, err := validate.ValidateStream(context.Background(), s, nf, ef,
			validate.Options{Program: validate.Compile(s)})
		if err != nil {
			return fmt.Errorf("loading graph CSV: %w", err)
		}
		defaultSeed.Graph = g
		if !res.Incomplete {
			defaultSeed.Result = res // uncapped strong run: /revalidate can start from it
		}
		status := "satisfies the schema"
		if !res.OK() {
			status = fmt.Sprintf("has %d violations", len(res.Violations))
		}
		fmt.Printf("streamed graph: %d nodes, %d edges in %s; ingest validation: graph %s\n",
			g.NumNodes(), g.NumEdges(), time.Since(loadStart).Round(time.Millisecond), status)
	} else {
		g, err := loadGraph(graphArg)
		if err != nil {
			return err
		}
		elements := g.NodeBound() + g.EdgeBound()
		fmt.Printf("loaded graph: %d nodes, %d edges in %s (validation autotune: %d workers)\n",
			g.NumNodes(), g.NumEdges(), time.Since(loadStart).Round(time.Millisecond),
			validate.Options{}.EffectiveWorkers(elements))
		defaultSeed.Graph = g
	}
	seeds := []server.TenantSeed{defaultSeed}
	for _, spec := range tenants {
		seed, err := parseTenantSeed(spec, *snapDir)
		if err != nil {
			return err
		}
		seeds = append(seeds, seed)
	}
	h, err := server.NewRegistry(server.RegistryConfig{
		Config:       cfg,
		MemoryBudget: *memBudget,
		Seeds:        seeds,
	})
	if err != nil {
		return err
	}

	// WriteTimeout must outlast the handler timeout, or the connection
	// dies before the 504 is written.
	srv := &http.Server{
		Addr:              *addr,
		Handler:           h.Mux(),
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       1 * time.Minute,
		WriteTimeout:      *reqTimeout + 30*time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	if *reqTimeout <= 0 {
		srv.WriteTimeout = 0
	}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving %d tenants on %s (/tenants/{name}/..., legacy aliases POST /graphql /validate /revalidate /graph/apply, GET /schema /metrics /healthz)\n",
		len(h.Registry().Names()), ln.Addr())
	return serveUntilSignal(srv, ln)
}

// serveUntilSignal runs the server until it fails or a SIGINT/SIGTERM
// arrives, then drains in-flight requests via graceful Shutdown (bounded
// to 15s) before returning.
func serveUntilSignal(srv *http.Server, ln net.Listener) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		stop() // a second signal kills immediately
		fmt.Fprintln(os.Stderr, "signal received, draining in-flight requests ...")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
		defer cancel()
		if err := srv.Shutdown(shutdownCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
		if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
			return err
		}
		fmt.Fprintln(os.Stderr, "server stopped")
		return nil
	}
}

// cmdSnapshot is the .pgsnap toolbox: save converts any loadable graph
// into the mmap-able binary snapshot format, load/info open one and
// report what is inside, verify checksums every section and
// deep-validates the structure.
func cmdSnapshot(args []string) error {
	if len(args) < 1 {
		return fmt.Errorf("snapshot: want a subcommand: save, load, info, or verify")
	}
	sub, rest := args[0], args[1:]
	switch sub {
	case "save":
		fs := flag.NewFlagSet("snapshot save", flag.ExitOnError)
		fs.Parse(rest)
		if fs.NArg() != 2 {
			return fmt.Errorf("snapshot save: want <graph.json|nodes.csv,edges.csv> <out.pgsnap>")
		}
		g, err := loadGraph(fs.Arg(0))
		if err != nil {
			return err
		}
		start := time.Now()
		if err := saveSnapshot(g, fs.Arg(1)); err != nil {
			return err
		}
		st, err := os.Stat(fs.Arg(1))
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s: %d nodes, %d edges, epoch %d, %d bytes in %s\n",
			fs.Arg(1), g.NumNodes(), g.NumEdges(), g.Epoch(), st.Size(),
			time.Since(start).Round(time.Microsecond))
		return nil
	case "load", "info":
		fs := flag.NewFlagSet("snapshot "+sub, flag.ExitOnError)
		verify := fs.Bool("verify", false, "checksum all sections and deep-validate the structure")
		fs.Parse(rest)
		if fs.NArg() != 1 {
			return fmt.Errorf("snapshot %s: want one .pgsnap file", sub)
		}
		var opts []pg.OpenOption
		if *verify {
			opts = append(opts, pg.Verify())
		}
		start := time.Now()
		g, err := pg.OpenSnapshot(fs.Arg(0), opts...)
		if err != nil {
			return err
		}
		defer g.Close()
		elapsed := time.Since(start)
		st, err := os.Stat(fs.Arg(0))
		if err != nil {
			return err
		}
		fmt.Printf("%s: %d nodes, %d edges, epoch %d, %d labels, %d bytes, opened in %s\n",
			fs.Arg(0), g.NumNodes(), g.NumEdges(), g.Epoch(), len(g.Labels()), st.Size(),
			elapsed.Round(time.Microsecond))
		return nil
	case "verify":
		fs := flag.NewFlagSet("snapshot verify", flag.ExitOnError)
		fs.Parse(rest)
		if fs.NArg() != 1 {
			return fmt.Errorf("snapshot verify: want one .pgsnap file")
		}
		start := time.Now()
		g, err := pg.OpenSnapshot(fs.Arg(0), pg.Verify())
		if err != nil {
			return fmt.Errorf("snapshot verify: %w", err)
		}
		defer g.Close()
		fmt.Printf("%s: OK (%d nodes, %d edges, epoch %d, verified in %s)\n",
			fs.Arg(0), g.NumNodes(), g.NumEdges(), g.Epoch(),
			time.Since(start).Round(time.Microsecond))
		return nil
	default:
		return fmt.Errorf("snapshot: unknown subcommand %q (want save, load, info, or verify)", sub)
	}
}

func cmdReduce(args []string) error {
	fs := flag.NewFlagSet("reduce", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("reduce: want one DIMACS CNF file")
	}
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	formula, err := cnf.ParseDIMACS(f)
	if err != nil {
		return err
	}
	red, err := reduction.FromCNF(formula)
	if err != nil {
		return err
	}
	fmt.Print(red.SDL)
	return nil
}

func cmdStats(args []string) error {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 1 {
		return fmt.Errorf("stats: want one graph file")
	}
	g, err := loadGraph(fs.Arg(0))
	if err != nil {
		return err
	}
	fmt.Print(g.ComputeStats())
	return nil
}
