package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testSchema = `
type User @key(fields: ["id"]) {
	id: ID! @required
	login: String! @required
	follows: [User] @distinct @noLoops
}`

const testGraph = `{
  "nodes": [
    {"id": "a", "label": "User", "properties": {"id": "u1", "login": "ada"}},
    {"id": "b", "label": "User", "properties": {"id": "u2", "login": "bob"}}
  ],
  "edges": [
    {"source": "a", "target": "b", "label": "follows"}
  ]
}`

const badGraph = `{
  "nodes": [
    {"id": "a", "label": "User", "properties": {"id": "u1"}},
    {"id": "b", "label": "Ghost"}
  ],
  "edges": []
}`

const testCNF = "p cnf 2 2\n1 -2 0\n2 0\n"

// write drops a file into dir and returns its path.
func write(t *testing.T, dir, name, content string) string {
	t.Helper()
	p := filepath.Join(dir, name)
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// capture runs fn with os.Stdout redirected and returns what it printed.
func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	runErr := fn()
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

func TestCmdFmt(t *testing.T) {
	dir := t.TempDir()
	schema := write(t, dir, "s.graphql", testSchema)
	out, err := capture(t, func() error { return cmdFmt([]string{schema}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "type User") || !strings.Contains(out, `@key(fields: ["id"])`) {
		t.Errorf("fmt output:\n%s", out)
	}
}

func TestCmdCheck(t *testing.T) {
	dir := t.TempDir()
	schema := write(t, dir, "s.graphql", testSchema)
	out, err := capture(t, func() error { return cmdCheck([]string{schema}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "consistent") {
		t.Errorf("check output: %s", out)
	}
	// Inconsistent schema: missing interface field.
	bad := write(t, dir, "bad.graphql", `
		interface I { f: Int }
		type T implements I { g: Int }`)
	if _, err := capture(t, func() error { return cmdCheck([]string{bad}) }); err == nil {
		t.Error("inconsistent schema accepted")
	}
}

func TestCmdValidate(t *testing.T) {
	dir := t.TempDir()
	schema := write(t, dir, "s.graphql", testSchema)
	good := write(t, dir, "good.json", testGraph)
	bad := write(t, dir, "bad.json", badGraph)

	out, err := capture(t, func() error { return cmdValidate([]string{schema, good}) })
	if err != nil {
		t.Fatalf("valid graph rejected: %v\n%s", err, out)
	}
	if !strings.Contains(out, "satisfies") {
		t.Errorf("validate output: %s", out)
	}

	out, err = capture(t, func() error { return cmdValidate([]string{schema, bad}) })
	if err == nil {
		t.Fatal("invalid graph accepted")
	}
	if !strings.Contains(out, "SS1") || !strings.Contains(out, "DS5") {
		t.Errorf("expected SS1 and DS5 violations, got:\n%s", out)
	}

	// A CSV pair ("nodes.csv,edges.csv") loads through the same argument.
	nodesCSV := write(t, dir, "nodes.csv", "id,label,id,login\na,User,u1,ada\nb,User,u2,bob\n")
	edgesCSV := write(t, dir, "edges.csv", "source,target,label\na,b,follows\n")
	out, err = capture(t, func() error {
		return cmdValidate([]string{schema, nodesCSV + "," + edgesCSV})
	})
	if err != nil {
		t.Fatalf("CSV graph rejected: %v\n%s", err, out)
	}
	if !strings.Contains(out, "2 nodes, 1 edges") {
		t.Errorf("CSV validate output: %s", out)
	}

	// Both ingest paths accept the pair and agree; a bogus path errors.
	for _, ingest := range []string{"stream", "two-phase"} {
		out, err = capture(t, func() error {
			return cmdValidate([]string{"-ingest", ingest, schema, nodesCSV + "," + edgesCSV})
		})
		if err != nil || !strings.Contains(out, "satisfies") {
			t.Errorf("-ingest %s: err %v, output: %s", ingest, err, out)
		}
	}
	if _, err := capture(t, func() error {
		return cmdValidate([]string{"-ingest", "warp", schema, nodesCSV + "," + edgesCSV})
	}); err == nil {
		t.Error("unknown -ingest path accepted")
	}

	// Weak mode tolerates the unjustified node.
	weakOnly := write(t, dir, "weak.json", `{"nodes":[{"id":"x","label":"Ghost"}],"edges":[]}`)
	if _, err := capture(t, func() error {
		return cmdValidate([]string{"-mode", "weak", schema, weakOnly})
	}); err != nil {
		t.Errorf("weak mode: %v", err)
	}

	// Violation cap.
	out, _ = capture(t, func() error { return cmdValidate([]string{"-max", "1", schema, bad}) })
	if got := strings.Count(out, "\n"); got > 1 {
		t.Errorf("expected one violation line, got:\n%s", out)
	}
}

func TestCmdGenerateAndStats(t *testing.T) {
	dir := t.TempDir()
	schema := write(t, dir, "s.graphql", testSchema)
	out, err := capture(t, func() error { return cmdGenerate([]string{"-nodes", "5", schema}) })
	if err != nil {
		t.Fatal(err)
	}
	graph := write(t, dir, "g.json", out)

	// The generated graph must validate.
	if _, err := capture(t, func() error { return cmdValidate([]string{schema, graph}) }); err != nil {
		t.Fatalf("generated graph invalid: %v", err)
	}

	statsOut, err := capture(t, func() error { return cmdStats([]string{graph}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(statsOut, "nodes: 5") {
		t.Errorf("stats output:\n%s", statsOut)
	}
}

func TestCmdReduce(t *testing.T) {
	dir := t.TempDir()
	cnfFile := write(t, dir, "f.cnf", testCNF)
	out, err := capture(t, func() error { return cmdReduce([]string{cnfFile}) })
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"type OT", "interface C1", "interface C2", "@requiredForTarget"} {
		if !strings.Contains(out, want) {
			t.Errorf("reduce output missing %q:\n%s", want, out)
		}
	}
	// The emitted SDL must itself pass `check` (round trip).
	sdl := write(t, dir, "reduced.graphql", out)
	if _, err := capture(t, func() error { return cmdCheck([]string{sdl}) }); err != nil {
		t.Errorf("reduced schema inconsistent: %v", err)
	}
}

func TestCmdSat(t *testing.T) {
	dir := t.TempDir()
	schema := write(t, dir, "s.graphql", testSchema)
	out, err := capture(t, func() error { return cmdSat([]string{schema, "User"}) })
	if err != nil {
		t.Fatalf("User should be satisfiable: %v", err)
	}
	if !strings.Contains(out, "satisfiable") {
		t.Errorf("sat output: %s", out)
	}
	// Witness file.
	witness := filepath.Join(dir, "w.json")
	if _, err := capture(t, func() error { return cmdSat([]string{"-witness", witness, schema, "User"}) }); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(witness); err != nil {
		t.Errorf("witness not written: %v", err)
	}
	// An unsatisfiable type exits with an error.
	unsat := write(t, dir, "unsat.graphql", `
		interface IT { f: [OT1] @uniqueForTarget }
		type OT2 implements IT { f: [OT1] @required }
		type OT3 implements IT { f: [OT1] @requiredForTarget }
		type OT1 { }`)
	if _, err := capture(t, func() error { return cmdSat([]string{unsat, "OT2"}) }); err == nil {
		t.Error("unsatisfiable type did not error")
	}
}

func TestCmdErrors(t *testing.T) {
	if err := cmdFmt([]string{"/nonexistent/file.graphql"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := cmdValidate([]string{"one-arg-only"}); err == nil {
		t.Error("wrong arity accepted")
	}
	dir := t.TempDir()
	schema := write(t, dir, "s.graphql", testSchema)
	graph := write(t, dir, "g.json", testGraph)
	if err := cmdValidate([]string{"-mode", "bogus", schema, graph}); err == nil {
		t.Error("bogus mode accepted")
	}
}

func TestCmdExport(t *testing.T) {
	dir := t.TempDir()
	schema := write(t, dir, "s.graphql", testSchema)
	out, err := capture(t, func() error { return cmdExport([]string{schema}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "CREATE CONSTRAINT ON (n:User) ASSERT n.id IS UNIQUE;") {
		t.Errorf("cypher export:\n%s", out)
	}
	out, err = capture(t, func() error { return cmdExport([]string{"-format", "gsql", "-graph", "g1", schema}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "CREATE GRAPH g1 (") {
		t.Errorf("gsql export:\n%s", out)
	}
	if err := cmdExport([]string{"-format", "bogus", schema}); err == nil {
		t.Error("bogus format accepted")
	}
}

func TestCmdQuery(t *testing.T) {
	dir := t.TempDir()
	schema := write(t, dir, "s.graphql", testSchema)
	graph := write(t, dir, "g.json", testGraph)
	out, err := capture(t, func() error {
		return cmdQuery([]string{schema, graph, `{ user(id: "u1") { login follows { login } } }`})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"login": "ada"`) || !strings.Contains(out, `"login": "bob"`) {
		t.Errorf("query output:\n%s", out)
	}
	// From a file, with an operation name.
	qf := write(t, dir, "q.graphql", `query A { allUsers { id } } query B { user(id: "u2") { login } }`)
	out, err = capture(t, func() error { return cmdQuery([]string{"-op", "B", schema, graph, "@" + qf}) })
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, `"login": "bob"`) {
		t.Errorf("operation B output:\n%s", out)
	}
	// A bad query errors.
	if _, err := capture(t, func() error {
		return cmdQuery([]string{schema, graph, `{ nope { x } }`})
	}); err == nil {
		t.Error("bad query accepted")
	}
}
