package main

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync/atomic"
	"syscall"
	"testing"
	"time"
)

// freePort reserves an ephemeral port and releases it for the server
// under test. The tiny reuse window is acceptable in tests.
func freePort(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// waitForServer polls url until it answers 200 or the deadline passes.
func waitForServer(t *testing.T, url string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		res, err := http.Get(url)
		if err == nil {
			res.Body.Close()
			if res.StatusCode == http.StatusOK {
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("server at %s never came up", url)
}

// TestCmdServeGracefulSIGINT: `pgschema serve` answers requests, then
// exits cleanly (nil error) when the process receives SIGINT.
func TestCmdServeGracefulSIGINT(t *testing.T) {
	dir := t.TempDir()
	schema := write(t, dir, "s.graphql", testSchema)
	graph := write(t, dir, "g.json", testGraph)
	addr := freePort(t)

	done := make(chan error, 1)
	go func() {
		_, err := capture(t, func() error {
			return cmdServe([]string{"-addr", addr, "-quiet", schema, graph})
		})
		done <- err
	}()
	base := "http://" + addr
	waitForServer(t, base+"/healthz")

	// The service actually serves: a validation run over the graph.
	res, err := http.Post(base+"/validate", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok": true`) {
		t.Fatalf("validate: %d %s", res.StatusCode, body)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("serve exited with error after SIGINT: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not exit within 5s of SIGINT")
	}
}

// TestCmdServeCSVIngest: `pgschema serve` over a nodes.csv,edges.csv
// pair streams the graph in, validates it on ingest, and comes up with
// the /revalidate cache already seeded — an incremental revalidation
// succeeds with no prior /validate request.
func TestCmdServeCSVIngest(t *testing.T) {
	dir := t.TempDir()
	schema := write(t, dir, "s.graphql", testSchema)
	nodesCSV := write(t, dir, "nodes.csv", "id,label,id,login\na,User,u1,ada\nb,User,u2,bob\n")
	edgesCSV := write(t, dir, "edges.csv", "source,target,label\na,b,follows\n")
	addr := freePort(t)

	done := make(chan error, 1)
	var out string
	go func() {
		var err error
		out, err = capture(t, func() error {
			return cmdServe([]string{"-addr", addr, "-quiet", schema, nodesCSV + "," + edgesCSV})
		})
		done <- err
	}()
	base := "http://" + addr
	waitForServer(t, base+"/healthz")

	res, err := http.Post(base+"/revalidate", "application/json", strings.NewReader(`{"nodes": [0]}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(res.Body)
	res.Body.Close()
	if res.StatusCode != http.StatusOK || !strings.Contains(string(body), `"ok": true`) {
		t.Fatalf("revalidate without prior /validate: %d %s", res.StatusCode, body)
	}

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("serve exited with error after SIGINT: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not exit within 5s of SIGINT")
	}
	if !strings.Contains(out, "streamed graph: 2 nodes, 1 edges") ||
		!strings.Contains(out, "ingest validation: graph satisfies the schema") {
		t.Errorf("serve startup output missing ingest summary:\n%s", out)
	}
}

// TestServeUntilSignalDrains: a request in flight when the signal
// arrives still completes before serveUntilSignal returns.
func TestServeUntilSignalDrains(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var served atomic.Bool
	srv := &http.Server{Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		close(entered)
		<-release
		served.Store(true)
		fmt.Fprint(w, "drained")
	})}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() { done <- serveUntilSignal(srv, ln) }()

	reqDone := make(chan string, 1)
	go func() {
		res, err := http.Get("http://" + ln.Addr().String() + "/")
		if err != nil {
			reqDone <- err.Error()
			return
		}
		defer res.Body.Close()
		body, _ := io.ReadAll(res.Body)
		reqDone <- string(body)
	}()
	<-entered

	if err := syscall.Kill(syscall.Getpid(), syscall.SIGINT); err != nil {
		t.Fatal(err)
	}
	// Give Shutdown a moment to begin, then let the handler finish.
	time.Sleep(50 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("serveUntilSignal returned before in-flight request finished")
	default:
	}
	close(release)

	if got := <-reqDone; got != "drained" {
		t.Errorf("in-flight request: got %q", got)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("serveUntilSignal: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serveUntilSignal did not return after drain")
	}
	if !served.Load() {
		t.Error("handler never completed")
	}
}
